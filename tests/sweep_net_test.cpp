// Transport-layer coverage for the multi-host sweep service (sweep/net.h):
// loopback listener/connector round trips, the kJoin/kFail payload codecs,
// the "net-send" fault-injection sites (drop, partial write, delay,
// disconnect) observed from the *receiving* side — a torn frame must
// surface as EOF, never as a chimera message — and the wire::write_message
// EAGAIN path on a nonblocking socket with a tiny send buffer (a short
// write must park on poll and deliver the frame whole, not busy-loop or
// drop bytes). Plus the manifest {"metrics":...} record loader semantics
// (last record wins) that the service's resume carry-forward rides on.
#include "sweep/manifest.h"
#include "sweep/net.h"
#include "sweep/runner.h"
#include "sweep/wire.h"
#include "util/faultinject.h"
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace xs::sweep {
namespace {

// net.h sends rely on the process-wide SIGPIPE ignore its callers (the
// service, the agent) install; this suite writes into severed sockets on
// purpose, so it installs the same one.
const bool sigpipe_ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
}();

// Pump a MessageReader until one frame pops, EOF, or the deadline.
bool read_one(wire::MessageReader& reader, int fd, wire::Message& out,
              int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
        if (reader.pop(out)) return true;
        if (reader.finished()) return false;
        if (std::chrono::steady_clock::now() >= deadline) return false;
        pollfd pfd{fd, POLLIN, 0};
        ::poll(&pfd, 1, 50);
        reader.fill();
    }
}

// A connected nonblocking AF_UNIX pair standing in for a TCP connection:
// identical stream semantics, no port allocation, and SO_SNDBUF is
// shrinkable for the EAGAIN test.
struct SocketPair {
    int a = -1, b = -1;
    SocketPair() {
        int sv[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        a = sv[0];
        b = sv[1];
        ::fcntl(a, F_SETFL, O_NONBLOCK);
        ::fcntl(b, F_SETFL, O_NONBLOCK);
    }
    ~SocketPair() {
        if (a >= 0) ::close(a);
        if (b >= 0) ::close(b);
    }
};

// Clear any armed fault plan and the process-wide send ordinal, both ways.
struct FaultScope {
    explicit FaultScope(const std::string& plan) {
        net::reset_frames_sent();
        util::fault::install_plan(plan);
    }
    ~FaultScope() {
        util::fault::install_plan("");
        net::reset_frames_sent();
    }
};

TEST(SweepNet, ParseHostport) {
    std::string host;
    std::uint16_t port = 0;
    EXPECT_TRUE(net::parse_hostport("127.0.0.1:7473", host, port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 7473);
    EXPECT_TRUE(net::parse_hostport("my-box:80", host, port));
    EXPECT_EQ(host, "my-box");
    EXPECT_EQ(port, 80);
    EXPECT_FALSE(net::parse_hostport("no-port", host, port));
    EXPECT_FALSE(net::parse_hostport(":7473", host, port));
    EXPECT_FALSE(net::parse_hostport("host:", host, port));
    EXPECT_FALSE(net::parse_hostport("host:notanumber", host, port));
    EXPECT_FALSE(net::parse_hostport("host:99999", host, port));
}

TEST(SweepNet, JoinCodecsRoundTrip) {
    std::string fp;
    std::int64_t capacity = 0;
    EXPECT_TRUE(net::decode_join(net::encode_join("abc123", 8), fp, capacity));
    EXPECT_EQ(fp, "abc123");
    EXPECT_EQ(capacity, 8);
    EXPECT_FALSE(net::decode_join("", fp, capacity));
    EXPECT_FALSE(net::decode_join("fingerprint-only", fp, capacity));

    double hb = 0.0, lease = 0.0;
    EXPECT_TRUE(
        net::decode_join_ok(net::encode_join_ok(1500.0, 60000.0), hb, lease));
    EXPECT_EQ(hb, 1500.0);
    EXPECT_EQ(lease, 60000.0);
    EXPECT_FALSE(net::decode_join_ok("not numbers", hb, lease));
}

TEST(SweepNet, FailCodecCarriesReasonWithSpaces) {
    std::int64_t ci = -1;
    std::string reason;
    EXPECT_TRUE(net::decode_fail(
        net::encode_fail(7, "worker killed by signal 9"), ci, reason));
    EXPECT_EQ(ci, 7);
    EXPECT_EQ(reason, "worker killed by signal 9");
    EXPECT_FALSE(net::decode_fail("", ci, reason));
    EXPECT_FALSE(net::decode_fail("notanumber reason", ci, reason));
}

TEST(SweepNet, LoopbackListenConnectFrameRoundTrip) {
    FaultScope clean("");
    std::string err;
    const int lfd = net::listen_on(0, &err);
    ASSERT_GE(lfd, 0) << err;
    const int port = net::bound_port(lfd);
    ASSERT_GT(port, 0);

    const int cfd =
        net::connect_to("127.0.0.1", static_cast<std::uint16_t>(port), &err);
    ASSERT_GE(cfd, 0) << err;

    int sfd = -1;
    for (int i = 0; i < 100 && sfd < 0; ++i) {
        pollfd pfd{lfd, POLLIN, 0};
        ::poll(&pfd, 1, 50);
        sfd = net::accept_conn(lfd);
    }
    ASSERT_GE(sfd, 0);

    // Client → server, then server → client, through send_frame.
    EXPECT_TRUE(net::send_frame(cfd, wire::MsgType::kJoin,
                                net::encode_join("fp", 4)));
    wire::MessageReader server(sfd);
    wire::Message msg;
    ASSERT_TRUE(read_one(server, sfd, msg));
    EXPECT_EQ(msg.type, wire::MsgType::kJoin);
    EXPECT_EQ(msg.payload, net::encode_join("fp", 4));

    EXPECT_TRUE(net::send_frame(sfd, wire::MsgType::kHeartbeat, ""));
    wire::MessageReader client(cfd);
    ASSERT_TRUE(read_one(client, cfd, msg));
    EXPECT_EQ(msg.type, wire::MsgType::kHeartbeat);
    EXPECT_TRUE(msg.payload.empty());

    ::close(cfd);
    ASSERT_FALSE(read_one(server, sfd, msg, 1000));
    EXPECT_TRUE(server.finished());  // peer close reads as EOF, not an error
    ::close(sfd);
    ::close(lfd);
}

// Satellite: wire::write_message on a *nonblocking* fd whose send buffer is
// far smaller than the frame. Every short write / EAGAIN must park on poll
// and resume exactly where it left off — the whole frame arrives intact
// while a slow reader drains the other end.
TEST(SweepNet, NonblockingShortWriteDeliversWholeFrame) {
    FaultScope clean("");
    SocketPair sp;
    const int small = 4096;
    ASSERT_EQ(::setsockopt(sp.a, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)),
              0);

    std::string payload(512 * 1024, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>('a' + (i * 131) % 26);

    bool wrote = false;
    std::thread writer([&] {
        wrote = wire::write_message(sp.a, wire::MsgType::kAck, payload);
    });

    wire::MessageReader reader(sp.b);
    wire::Message msg;
    const bool got = read_one(reader, sp.b, msg, 20000);
    writer.join();
    ASSERT_TRUE(wrote);
    ASSERT_TRUE(got);
    EXPECT_EQ(msg.type, wire::MsgType::kAck);
    EXPECT_EQ(msg.payload, payload);  // no dropped or duplicated bytes
}

TEST(SweepNet, NetDropSwallowsExactlyTheTargetFrame) {
    SocketPair sp;
    FaultScope fault("net-drop@net-send:0");
    // Ordinal 0 is swallowed but reported sent; ordinal 1 goes through.
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kAck, "dropped"));
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kAck, "delivered"));
    EXPECT_EQ(net::frames_sent(), 2);

    wire::MessageReader reader(sp.b);
    wire::Message msg;
    ASSERT_TRUE(read_one(reader, sp.b, msg));
    EXPECT_EQ(msg.payload, "delivered");  // first frame truly vanished
    EXPECT_FALSE(reader.pop(msg));
}

TEST(SweepNet, NetPartialWriteTearsFrameAndPeerSeesEofNotChimera) {
    SocketPair sp;
    FaultScope fault("net-partial-write@net-send:0");
    EXPECT_FALSE(net::send_frame(sp.a, wire::MsgType::kAck,
                                 "a payload long enough to tear in half"));

    // The peer got a frame *prefix* then EOF: the reader must report the
    // stream finished without ever yielding a message from the torn bytes.
    wire::MessageReader reader(sp.b);
    wire::Message msg;
    EXPECT_FALSE(read_one(reader, sp.b, msg, 2000));
    EXPECT_TRUE(reader.finished());
}

TEST(SweepNet, NetDisconnectSeversWithoutSending) {
    SocketPair sp;
    FaultScope fault("net-disconnect@net-send:0");
    EXPECT_FALSE(net::send_frame(sp.a, wire::MsgType::kHeartbeat, ""));

    wire::MessageReader reader(sp.b);
    wire::Message msg;
    EXPECT_FALSE(read_one(reader, sp.b, msg, 2000));
    EXPECT_TRUE(reader.finished());

    // The connection is gone from the sender's side too.
    util::fault::install_plan("");
    EXPECT_FALSE(net::send_frame(sp.a, wire::MsgType::kHeartbeat, ""));
}

TEST(SweepNet, NetDelayStallsThenDeliversIntact) {
    // The stall duration is read from the environment once per process;
    // nothing before this test triggers kNetDelay, so the cache picks this
    // value up. Agents under test get theirs via their own environment.
    ::setenv("XS_FAULT_NET_DELAY_MS", "80", 1);
    SocketPair sp;
    FaultScope fault("net-delay@net-send:0");
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kAck, "late but whole"));
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(elapsed_ms, 75.0);

    wire::MessageReader reader(sp.b);
    wire::Message msg;
    ASSERT_TRUE(read_one(reader, sp.b, msg));
    EXPECT_EQ(msg.payload, "late but whole");
    ::unsetenv("XS_FAULT_NET_DELAY_MS");
}

TEST(SweepNet, NetSendAckSiteCountsOnlyAckFrames) {
    SocketPair sp;
    // The ack-ordinal site makes "this host's Nth result" targetable where
    // the raw frame ordinal depends on how many heartbeats interleave:
    // here ack-ordinal 1 is the third frame sent, and only it vanishes.
    FaultScope fault("net-drop@net-send-ack:1");
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kAck, "first result"));
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kHeartbeat, ""));
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kAck, "second result"));
    EXPECT_TRUE(net::send_frame(sp.a, wire::MsgType::kAck, "third result"));

    wire::MessageReader reader(sp.b);
    wire::Message msg;
    ASSERT_TRUE(read_one(reader, sp.b, msg));
    EXPECT_EQ(msg.payload, "first result");
    ASSERT_TRUE(read_one(reader, sp.b, msg));
    EXPECT_EQ(msg.type, wire::MsgType::kHeartbeat);
    ASSERT_TRUE(read_one(reader, sp.b, msg));
    EXPECT_EQ(msg.payload, "third result");  // the second truly vanished
    EXPECT_FALSE(reader.pop(msg));
}

// Satellite: a resumed run appends a fresh {"metrics":...} record, so a
// manifest accumulates several — the loader keeps the last (the newest
// carries the accumulated totals forward) and counts none as corrupt.
TEST(SweepNet, ManifestMetricsRecordLastWins) {
    const auto dir = std::filesystem::temp_directory_path() / "xs_sweep_net";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "metrics_lastwins.jsonl").string();

    util::metrics::Snapshot first, second;
    first.counters["sweep.cells.done"] = 2;
    second.counters["sweep.cells.done"] = 4;
    {
        ManifestWriter w(path, false);
        w.record_config("fp");
        CellResult r;
        r.accuracy = 91.5;
        w.record("cell-a", r);
        w.record_metrics(util::metrics::to_json(first));
        w.record("cell-b", r);
        w.record_metrics(util::metrics::to_json(second));
        ASSERT_TRUE(w.ok());
    }

    const ManifestLoad load = load_manifest_file(path);
    EXPECT_EQ(load.skipped_lines, 0);
    EXPECT_EQ(load.results.size(), 2u);
    EXPECT_EQ(load.config, "fp");
    EXPECT_EQ(load.metrics_json, util::metrics::to_json(second));
}

TEST(SweepNet, MergePriorMetricsFoldsAndSurvivesGarbage) {
    util::metrics::Snapshot prior;
    prior.counters["sweep.cells.done"] = 2;
    prior.counters["only.in.prior"] = 7;

    util::metrics::Snapshot now;
    now.counters["sweep.cells.done"] = 2;
    merge_prior_metrics(util::metrics::to_json(prior), now);
    EXPECT_EQ(now.counters.at("sweep.cells.done"), 4u);
    EXPECT_EQ(now.counters.at("only.in.prior"), 7u);

    // An unparsable prior record warns and leaves the snapshot untouched —
    // telemetry never fails a sweep.
    util::metrics::Snapshot untouched = now;
    merge_prior_metrics("{not json", now);
    EXPECT_EQ(now, untouched);
    merge_prior_metrics("", now);  // no prior record at all is the norm
    EXPECT_EQ(now, untouched);
}

}  // namespace
}  // namespace xs::sweep
