// SweepSpec grid expansion, spec-file/flag parsing, manifest line
// round-tripping, and per-cell seed stability (sweep/spec.h, sweep/manifest.h).
#include "sweep/manifest.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

namespace xs::sweep {
namespace {

util::Flags make_flags(std::vector<std::string> args) {
    std::vector<char*> argv;
    static const char* name = "sweep_spec_test";
    argv.push_back(const_cast<char*>(name));
    for (auto& arg : args) argv.push_back(arg.data());
    return util::Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(SweepSpec, ExpandIsFullGridWithRepeatInnermost) {
    SweepSpec spec;
    spec.variants = {"vgg11", "vgg16"};
    spec.class_counts = {10};
    spec.prunes = {{prune::Method::kNone, 0.0},
                   {prune::Method::kChannelFilter, 0.8}};
    spec.mitigations = {{false, false}, {false, true}};
    spec.sizes = {16, 64};
    spec.faults = {{0.0, 0.0}, {0.01, 0.001}};
    spec.repeats = 3;

    const std::vector<SweepCell> cells = spec.expand();
    ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u * 2u * 3u);

    std::set<std::string> ids;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].repeat, static_cast<std::int64_t>(i % 3));
        EXPECT_TRUE(ids.insert(cells[i].id()).second) << cells[i].id();
        // One group's cells are contiguous and share group_id.
        if (i % 3 != 0) {
            EXPECT_EQ(cells[i].group_id(), cells[i - 1].group_id());
        }
    }
    // Deterministic: a second expansion is identical.
    const std::vector<SweepCell> again = spec.expand();
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].id(), again[i].id());
}

TEST(SweepSpec, ParsePruneAndMitigationSyntax) {
    const auto flags = make_flags({"--prune=none,cf:0.8,xcs:0.6",
                                   "--mitigations=none,rearrange,wct,wct+r"});
    const SweepSpec spec = parse_sweep_spec(flags);
    ASSERT_EQ(spec.prunes.size(), 3u);
    EXPECT_EQ(spec.prunes[0].method, prune::Method::kNone);
    EXPECT_EQ(spec.prunes[1].method, prune::Method::kChannelFilter);
    EXPECT_DOUBLE_EQ(spec.prunes[1].sparsity, 0.8);
    EXPECT_EQ(spec.prunes[2].method, prune::Method::kXbarColumn);
    EXPECT_DOUBLE_EQ(spec.prunes[2].sparsity, 0.6);

    ASSERT_EQ(spec.mitigations.size(), 4u);
    EXPECT_EQ(spec.mitigations[0].name(), "none");
    EXPECT_EQ(spec.mitigations[1].name(), "rearrange");
    EXPECT_EQ(spec.mitigations[2].name(), "wct");
    EXPECT_TRUE(spec.mitigations[3].wct && spec.mitigations[3].rearrange);

    // A pruned method without a sparsity is a spec error.
    EXPECT_THROW(parse_sweep_spec(make_flags({"--prune=cf"})), std::exception);
    EXPECT_THROW(parse_sweep_spec(make_flags({"--mitigations=frobnicate"})),
                 std::exception);
}

TEST(SweepSpec, SpecFileParsesAndCliWins) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "xs_spec_test.sweep").string();
    {
        std::ofstream out(path);
        out << "# paper grid\n"
            << "sizes = 16,32,64   # crossbar sizes\n"
            << "sigmas = 0.05,0.10\n"
            << "sweep-repeats = 5\n";
    }
    const auto flags = make_flags({"--spec=" + path, "--sizes=8"});
    const SweepSpec spec = parse_sweep_spec(flags);
    // CLI flag beats the file; file beats the default.
    ASSERT_EQ(spec.sizes.size(), 1u);
    EXPECT_EQ(spec.sizes[0], 8);
    ASSERT_EQ(spec.sigmas.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.sigmas[0], 0.05);
    EXPECT_EQ(spec.repeats, 5);
    std::filesystem::remove(path);

    EXPECT_THROW(parse_sweep_spec(make_flags({"--spec=/nonexistent/x.sweep"})),
                 std::exception);

    // A misspelled axis key must fail loudly, not run the default grid.
    {
        std::ofstream out(path);
        out << "size = 16\n";  // typo: the key is 'sizes'
    }
    EXPECT_THROW(parse_sweep_spec(make_flags({"--spec=" + path})),
                 std::exception);
    std::filesystem::remove(path);
}

TEST(SweepManifest, LineRoundTripsDoublesExactly) {
    CellResult r;
    r.accuracy = 100.0 / 3.0;
    r.nf_mean = 0.012345678901234567;
    r.energy_pj = 98765.4321012345;
    r.software_acc = 83.33333333333333;
    r.tiles = 1234567;
    r.solver_failures = 3;
    r.wall_ms = 17.25;
    r.backend = "fast";

    const std::string line = encode_manifest_line("grp/x64/r1", r);
    std::string id;
    CellResult back;
    ASSERT_TRUE(decode_manifest_line(line, id, back));
    EXPECT_EQ(id, "grp/x64/r1");
    // Bit-exact round trip — the resume path aggregates from these.
    EXPECT_EQ(back.accuracy, r.accuracy);
    EXPECT_EQ(back.nf_mean, r.nf_mean);
    EXPECT_EQ(back.energy_pj, r.energy_pj);
    EXPECT_EQ(back.software_acc, r.software_acc);
    EXPECT_EQ(back.tiles, r.tiles);
    EXPECT_EQ(back.solver_failures, r.solver_failures);
    EXPECT_EQ(back.backend, "fast");
    EXPECT_EQ(encode_manifest_line(id, back), line);

    // Manifests predating the backend axis decode to "circuit".
    CellResult legacy;
    legacy.backend.clear();
    const std::string old_line = encode_manifest_line("grp/x64/r0", CellResult{});
    std::string legacy_id;
    // Strip the backend field to simulate a pre-axis line.
    std::string stripped = old_line;
    const auto bk = stripped.find(",\"backend\":\"circuit\"");
    ASSERT_NE(bk, std::string::npos);
    stripped.erase(bk, std::strlen(",\"backend\":\"circuit\""));
    ASSERT_TRUE(decode_manifest_line(stripped, legacy_id, legacy));
    EXPECT_EQ(legacy.backend, "circuit");
}

TEST(SweepManifest, FailedLineRoundTripsTaxonomy) {
    CellResult r;
    r.status = "failed";
    r.reason = "worker killed by signal 9 (said \"boom\"\nmid-line)";
    r.attempts = 3;
    r.backend = "fast";

    const std::string line = encode_manifest_line("grp/x32/r1", r);
    std::string id;
    CellResult back;
    ASSERT_TRUE(decode_manifest_line(line, id, back));
    EXPECT_EQ(id, "grp/x32/r1");
    EXPECT_TRUE(back.failed());
    EXPECT_EQ(back.status, "failed");
    // Newlines are flattened on encode; quotes survive the escaping.
    EXPECT_EQ(back.reason, "worker killed by signal 9 (said \"boom\" mid-line)");
    EXPECT_EQ(back.attempts, 3);
    EXPECT_EQ(back.backend, "fast");
    // Failed lines carry no result numbers.
    EXPECT_EQ(line.find("accuracy"), std::string::npos);
}

TEST(SweepManifest, LegacyUnconvergedSpellingDecodes) {
    CellResult r;
    r.solver_failures = 7;
    std::string line = encode_manifest_line("grp/r0", r);
    const auto pos = line.find("solver_failures");
    ASSERT_NE(pos, std::string::npos);
    line.replace(pos, std::strlen("solver_failures"), "unconverged");

    std::string id;
    CellResult back;
    ASSERT_TRUE(decode_manifest_line(line, id, back));
    EXPECT_EQ(back.solver_failures, 7);

    // And a line predating the field entirely decodes to 0.
    std::string old_line = encode_manifest_line("grp/r0", CellResult{});
    const auto f = old_line.find(",\"solver_failures\":0");
    ASSERT_NE(f, std::string::npos);
    old_line.erase(f, std::strlen(",\"solver_failures\":0"));
    ASSERT_TRUE(decode_manifest_line(old_line, id, back));
    EXPECT_EQ(back.solver_failures, 0);
}

TEST(SweepManifest, MidLineCorruptionIsRejectedNotChimeraParsed) {
    CellResult a, b;
    a.accuracy = 10.0;
    b.accuracy = 90.0;
    const std::string la = encode_manifest_line("cell-a/r0", a);
    const std::string lb = encode_manifest_line("cell-b/r0", b);
    // A crash mid-append leaves half of record A with record B glued on —
    // one physical line that still starts with '{' and ends with '}'.
    const std::string torn = la.substr(0, la.size() / 2) + lb;
    std::string id;
    CellResult back;
    EXPECT_FALSE(decode_manifest_line(torn, id, back));

    // The loader counts it as skipped instead of resuming a chimera.
    const std::string path =
        (std::filesystem::temp_directory_path() / "xs_manifest_torn.jsonl")
            .string();
    {
        std::ofstream out(path);
        out << "{\"sweep_config\":\"fp\"}\n" << torn << '\n' << la << '\n';
    }
    const ManifestLoad load = load_manifest_file(path);
    EXPECT_EQ(load.config, "fp");
    EXPECT_EQ(load.skipped_lines, 1);
    ASSERT_EQ(load.results.size(), 1u);
    EXPECT_EQ(load.results.at("cell-a/r0").accuracy, 10.0);
    std::filesystem::remove(path);
}

TEST(SweepManifest, LoadSkipsTruncatedAndMalformedLines) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "xs_manifest_test.jsonl")
            .string();
    CellResult r;
    r.accuracy = 50.0;
    {
        std::ofstream out(path);
        out << encode_manifest_line("a/r0", r) << '\n';
        out << "not json\n";
        r.accuracy = 75.0;
        out << encode_manifest_line("a/r0", r) << '\n';  // duplicate: last wins
        out << encode_manifest_line("b/r1", r) << '\n';
        out << "{\"cell\":\"trunc";  // crash mid-write
    }
    const auto loaded = load_manifest(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.at("a/r0").accuracy, 75.0);
    EXPECT_EQ(loaded.at("b/r1").accuracy, 75.0);
    std::filesystem::remove(path);
}

TEST(SweepSpec, BackendAxisExpandsParsesAndSharesSeeds) {
    const SweepSpec parsed =
        parse_sweep_spec(make_flags({"--backends=circuit,fast,ideal"}));
    ASSERT_EQ(parsed.backends.size(), 3u);
    EXPECT_EQ(parsed.backends[0], xbar::BackendKind::kCircuit);
    EXPECT_EQ(parsed.backends[1], xbar::BackendKind::kFast);
    EXPECT_EQ(parsed.backends[2], xbar::BackendKind::kIdeal);
    EXPECT_THROW(parse_sweep_spec(make_flags({"--backends=warp"})),
                 std::exception);

    SweepSpec spec;
    spec.sizes = {16};
    spec.backends = {xbar::BackendKind::kCircuit, xbar::BackendKind::kFast};
    spec.repeats = 2;
    const std::vector<SweepCell> cells = spec.expand();
    ASSERT_EQ(cells.size(), 4u);  // 2 backends × 2 repeats
    EXPECT_EQ(cells[0].backend, xbar::BackendKind::kCircuit);
    EXPECT_EQ(cells[2].backend, xbar::BackendKind::kFast);
    // Distinct manifest identities…
    EXPECT_NE(cells[0].group_id(), cells[2].group_id());
    EXPECT_NE(cells[2].group_id().find("bk-fast"), std::string::npos);
    // …and circuit ids keep their pre-backend-axis form, so manifests
    // recorded before the axis existed still resume.
    EXPECT_EQ(cells[0].group_id().find("bk-"), std::string::npos);
    EXPECT_EQ(cells[0].group_id(), cells[0].seed_key());
    // …but identical stochastic draws: the seed ignores the backend axis so
    // a fast-vs-circuit accuracy gap is pure model error.
    EXPECT_EQ(cell_seed(11, cells[0]), cell_seed(11, cells[2]));
    EXPECT_NE(cell_seed(11, cells[0]), cell_seed(11, cells[1]));
}

TEST(SweepSpec, QuantAndCompensationAxesExpandParseAndKeepLegacyIds) {
    const SweepSpec parsed = parse_sweep_spec(
        make_flags({"--quant-levels=0,64,16",
                    "--mitigations=none,comp,rearrange+comp,wct+r+comp"}));
    ASSERT_EQ(parsed.quant_levels.size(), 3u);
    EXPECT_EQ(parsed.quant_levels[0], 0);
    EXPECT_EQ(parsed.quant_levels[1], 64);
    EXPECT_EQ(parsed.quant_levels[2], 16);
    ASSERT_EQ(parsed.mitigations.size(), 4u);
    EXPECT_EQ(parsed.mitigations[1].name(), "comp");
    EXPECT_EQ(parsed.mitigations[2].name(), "rearrange+comp");
    EXPECT_TRUE(parsed.mitigations[3].wct && parsed.mitigations[3].rearrange &&
                parsed.mitigations[3].compensate);

    SweepSpec spec;
    spec.sizes = {16};
    spec.quant_levels = {0, 64};
    spec.repeats = 1;
    const std::vector<SweepCell> cells = spec.expand();
    ASSERT_EQ(cells.size(), 2u);
    // Continuous-write cells keep their pre-axis ids (manifests recorded
    // before the axis existed still resume); quantized cells are distinct.
    EXPECT_EQ(cells[0].group_id().find("/q"), std::string::npos);
    EXPECT_NE(cells[1].group_id().find("/q64"), std::string::npos);
    EXPECT_NE(cell_seed(11, cells[0]), cell_seed(11, cells[1]));
}

TEST(SweepSeed, DeterministicPerCellIdentity) {
    SweepCell a;
    a.variant = "vgg11";
    a.xbar_size = 64;
    SweepCell b = a;
    EXPECT_EQ(cell_seed(11, a), cell_seed(11, b));
    b.repeat = 1;
    EXPECT_NE(cell_seed(11, a), cell_seed(11, b));
    b = a;
    b.xbar_size = 32;
    EXPECT_NE(cell_seed(11, a), cell_seed(11, b));
    EXPECT_NE(cell_seed(11, a), cell_seed(12, a));
}

}  // namespace
}  // namespace xs::sweep
