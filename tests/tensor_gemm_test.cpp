#include "tensor/gemm.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

namespace xs::tensor {
namespace {

// Naive triple-loop reference.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p)
                acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
            c.at(i, j) = static_cast<float>(acc);
        }
    return c;
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesReference) {
    const auto [m, n, k] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
    Tensor a({m, k}), b({k, n});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    const Tensor c = matmul(a, b);
    const Tensor r = ref_matmul(a, b);
    EXPECT_TRUE(allclose(c, r, 1e-3f, 1e-3f))
        << "max diff " << max_abs_diff(c, r);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(65, 33, 129),
                      std::make_tuple(128, 64, 256), std::make_tuple(1, 100, 50),
                      std::make_tuple(100, 1, 50), std::make_tuple(70, 70, 1)));

TEST(Gemm, SparseAMatchesReference) {
    // 90 %-sparse A above the size threshold exercises the row-sparse
    // zero-skip path; a dense B keeps the reference meaningful.
    util::Rng rng(99);
    Tensor a({64, 64}), b({64, 48});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        if (rng.uniform() < 0.9) a[i] = 0.0f;
    const Tensor c = matmul(a, b);
    const Tensor r = ref_matmul(a, b);
    EXPECT_TRUE(allclose(c, r, 1e-3f, 1e-3f))
        << "max diff " << max_abs_diff(c, r);

    // alpha/beta semantics must match on the sparse path too.
    Tensor c2({64, 48}, 1.0f);
    gemm(64, 48, 64, 2.0f, a.data(), 64, b.data(), 48, 0.5f, c2.data(), 48);
    for (std::int64_t i = 0; i < c2.numel(); ++i)
        EXPECT_NEAR(c2[i], 2.0f * r[i] + 0.5f, 1e-2f);
}

TEST(Gemm, AlphaBeta) {
    util::Rng rng(3);
    Tensor a({4, 5}), b({5, 6}), c0({4, 6});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    fill_normal(c0, rng, 0.0f, 1.0f);

    Tensor c = c0;
    gemm(4, 6, 5, 2.0f, a.data(), 5, b.data(), 6, 0.5f, c.data(), 6);

    const Tensor ab = ref_matmul(a, b);
    for (std::int64_t i = 0; i < 24; ++i)
        EXPECT_NEAR(c[i], 2.0f * ab[i] + 0.5f * c0[i], 1e-4f);
}

TEST(Gemm, BetaOneAccumulates) {
    util::Rng rng(5);
    Tensor a({3, 3}), b({3, 3});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    Tensor c({3, 3}, 1.0f);
    gemm(3, 3, 3, 1.0f, a.data(), 3, b.data(), 3, 1.0f, c.data(), 3);
    const Tensor ab = ref_matmul(a, b);
    for (std::int64_t i = 0; i < 9; ++i) EXPECT_NEAR(c[i], ab[i] + 1.0f, 1e-4f);
}

TEST(Gemm, SerialMatchesParallel) {
    util::Rng rng(7);
    Tensor a({150, 90}), b({90, 110});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    Tensor c1({150, 110}), c2({150, 110});
    gemm(150, 110, 90, 1.0f, a.data(), 90, b.data(), 110, 0.0f, c1.data(), 110);
    gemm_serial(150, 110, 90, 1.0f, a.data(), 90, b.data(), 110, 0.0f, c2.data(),
                110);
    EXPECT_TRUE(allclose(c1, c2, 0.0f, 0.0f));
}

TEST(Gemm, MatmulTnNt) {
    util::Rng rng(9);
    Tensor a({6, 4}), b({6, 5});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    // Aᵀ·B == ref(transpose(A), B)
    EXPECT_TRUE(allclose(matmul_tn(a, b), ref_matmul(transpose(a), b), 1e-4f, 1e-4f));
    Tensor c({5, 4});  // A·Cᵀ: (6,4)·(4,5)
    fill_normal(c, rng, 0.0f, 1.0f);
    EXPECT_TRUE(allclose(matmul_nt(a, c), ref_matmul(a, transpose(c)), 1e-4f, 1e-4f));
}

TEST(Gemm, InnerDimMismatchThrows) {
    Tensor a({2, 3}), b({4, 2});
    EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Gemv, MatchesMatmul) {
    util::Rng rng(11);
    Tensor a({7, 9}), x({9, 1});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(x, rng, 0.0f, 1.0f);
    std::vector<float> y(7);
    gemv(7, 9, a.data(), x.data(), y.data());
    const Tensor r = matmul(a, x);
    for (int i = 0; i < 7; ++i) EXPECT_NEAR(y[static_cast<std::size_t>(i)], r[i], 1e-4f);
}

TEST(Gemm, ZeroInnerDimension) {
    // k = 0 with beta=0 must produce zeros, not read from B.
    Tensor c({2, 2}, 5.0f);
    gemm(2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 0.0f, c.data(), 2);
    for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 0.0f);
}

TEST(GemmPrepacked, SerialMatchesReference) {
    // Odd sizes exercise panel tails in both dimensions and multiple
    // k-blocks (k > kPackKc).
    for (const auto& [m, n, k] : {std::tuple{16, 64, 27}, {33, 100, 300},
                                 {8, 16, 512}, {128, 4, 1152}}) {
        util::Rng rng(static_cast<std::uint64_t>(m + n + k));
        Tensor a({m, k}), b({k, n});
        fill_normal(a, rng, 0.0f, 1.0f);
        fill_normal(b, rng, 0.0f, 1.0f);
        PackedGemmA pa;
        gemm_pack_a(m, k, a.data(), k, pa);
        EXPECT_FALSE(pa.sparse);
        Tensor c({m, n});
        gemm_prepacked_serial(pa, a.data(), k, n, 1.0f, b.data(), n, 0.0f,
                              c.data(), n);
        const Tensor r = ref_matmul(a, b);
        EXPECT_TRUE(allclose(c, r, 1e-3f, 1e-3f))
            << m << "x" << n << "x" << k << " max diff " << max_abs_diff(c, r);
    }
}

TEST(GemmPrepacked, SparseAUsesZeroSkipAndMatches) {
    util::Rng rng(21);
    Tensor a({48, 96}), b({96, 40});
    fill_normal(a, rng, 0.0f, 1.0f);
    fill_normal(b, rng, 0.0f, 1.0f);
    for (std::int64_t i = 0; i < a.numel(); ++i)
        if (rng.uniform() < 0.9) a[i] = 0.0f;
    PackedGemmA pa;
    gemm_pack_a(48, 96, a.data(), 96, pa);
    EXPECT_TRUE(pa.sparse);
    Tensor c({48, 40});
    gemm_prepacked_serial(pa, a.data(), 96, 40, 1.0f, b.data(), 40, 0.0f,
                          c.data(), 40);
    const Tensor r = ref_matmul(a, b);
    EXPECT_TRUE(allclose(c, r, 1e-3f, 1e-3f));
}

// Pack B by hand into the panel-block layout (same as im2col_pack_b's
// output) and run the tiled kernel with the fused bias+ReLU epilogue.
void pack_b_reference(const Tensor& b, std::int64_t k, std::int64_t n,
                      std::vector<float>& packed) {
    packed.assign(static_cast<std::size_t>(packed_b_size(k, n)), 0.0f);
    const std::int64_t block_panels = kPackNc / kPackNr;
    for (std::int64_t g = 0; g < packed_b_panels(n); ++g) {
        const std::int64_t nb = g / block_panels;
        const std::int64_t jp = g - nb * block_panels;
        const std::int64_t blk_panels =
            std::min(block_panels, packed_b_panels(n) - nb * block_panels);
        float* block = packed.data() + nb * block_panels * k * kPackNr;
        for (std::int64_t p = 0; p < k; ++p) {
            const std::int64_t pc = (p / kPackKc) * kPackKc;
            const std::int64_t kc = std::min(kPackKc, k - pc);
            float* dst = block + blk_panels * pc * kPackNr +
                         jp * kc * kPackNr + (p - pc) * kPackNr;
            for (std::int64_t l = 0; l < kPackNr; ++l) {
                const std::int64_t j = g * kPackNr + l;
                dst[l] = j < n ? b.at(p, j) : 0.0f;
            }
        }
    }
}

TEST(GemmPrepacked, TilesWithFusedEpilogueMatchReference) {
    for (const bool sparse : {false, true}) {
        const std::int64_t m = 24, n = 1100, k = 280;  // spans block tails
        util::Rng rng(sparse ? 31u : 32u);
        Tensor a({m, k}), b({k, n}), bias({m});
        fill_normal(a, rng, 0.0f, 1.0f);
        fill_normal(b, rng, 0.0f, 1.0f);
        fill_normal(bias, rng, 0.0f, 1.0f);
        if (sparse)
            for (std::int64_t i = 0; i < a.numel(); ++i)
                if (rng.uniform() < 0.9) a[i] = 0.0f;
        PackedGemmA pa;
        gemm_pack_a(m, k, a.data(), k, pa);
        EXPECT_EQ(pa.sparse, sparse);
        std::vector<float> packed;
        pack_b_reference(b, k, n, packed);
        Tensor c({m, n});
        gemm_prepacked_tiles(pa, a.data(), k, packed.data(), n, c.data(), n,
                             bias.data(), /*relu=*/true, 0,
                             gemm_tile_count(m, n));
        Tensor r = ref_matmul(a, b);
        for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < n; ++j)
                r.at(i, j) = std::max(r.at(i, j) + bias[i], 0.0f);
        EXPECT_TRUE(allclose(c, r, 1e-3f, 1e-3f))
            << (sparse ? "sparse" : "dense") << " max diff "
            << max_abs_diff(c, r);
    }
}

}  // namespace
}  // namespace xs::tensor
