// Equivalence pin for the lane-batched repeat evaluator (DESIGN.md §12):
// with cold-start solves, evaluate_on_crossbars must produce bit-identical
// results with repeat_batch on and off, for any repeat count and backend.
// This is what lets sweeps switch to batched execution without changing a
// single CSV byte.
#include "core/evaluator.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cstring>

namespace xs::core {
namespace {

using tensor::Tensor;

::testing::AssertionResult bits_eq(double a, double b, const char* what) {
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(a));
    std::memcpy(&bb, &b, sizeof(b));
    if (ba == bb) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << what << ": " << a << " vs " << b << " (bits differ)";
}

nn::Sequential tiny_vgg(std::uint64_t seed) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(seed);
    return nn::build_vgg(vc, rng);
}

nn::Dataset tiny_dataset(std::uint64_t seed) {
    nn::Dataset test;
    test.num_classes = 10;
    test.images = Tensor({16, 3, 32, 32});
    util::Rng rng(seed);
    tensor::fill_normal(test.images, rng, 0.0f, 1.0f);
    test.labels.resize(16);
    for (std::size_t i = 0; i < 16; ++i)
        test.labels[i] = static_cast<std::int64_t>(i % 10);
    return test;
}

void expect_identical(const EvalResult& a, const EvalResult& b,
                      const std::string& tag) {
    SCOPED_TRACE(tag);
    EXPECT_TRUE(bits_eq(a.accuracy, b.accuracy, "accuracy"));
    EXPECT_TRUE(bits_eq(a.nf_mean, b.nf_mean, "nf_mean"));
    EXPECT_EQ(a.total_tiles, b.total_tiles);
    EXPECT_EQ(a.unconverged_tiles, b.unconverged_tiles);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        SCOPED_TRACE(a.layers[i].layer);
        EXPECT_EQ(a.layers[i].tiles, b.layers[i].tiles);
        EXPECT_EQ(a.layers[i].unconverged, b.layers[i].unconverged);
        EXPECT_TRUE(bits_eq(a.layers[i].nf_mean, b.layers[i].nf_mean,
                            "layer nf_mean"));
        EXPECT_TRUE(bits_eq(a.layers[i].w_ref, b.layers[i].w_ref, "w_ref"));
    }
}

EvalConfig cold_config(xbar::BackendKind backend) {
    EvalConfig config;
    config.xbar.size = 32;
    config.backend = backend;
    config.warm_start_solves = false;  // cold starts: strict bit identity
    config.seed = 21;
    return config;
}

TEST(RepeatBatch, ColdMatchesSequentialBitExactAcrossRepeatCounts) {
    nn::Sequential model = tiny_vgg(12);
    const nn::Dataset test = tiny_dataset(15);
    // 1 = scalar-solver lane fallback, 3 = one partial group, 8 = two full
    // groups through the producer/consumer pipeline (groups of
    // kMaxSolveLanes/2 repeats).
    for (const std::int64_t repeats : {1, 3, 8}) {
        EvalConfig config = cold_config(xbar::BackendKind::kCircuit);
        config.repeats = repeats;
        config.repeat_batch = true;
        const EvalResult batched = evaluate_on_crossbars(model, test, config);
        config.repeat_batch = false;
        const EvalResult sequential =
            evaluate_on_crossbars(model, test, config);
        expect_identical(batched, sequential,
                         "repeats=" + std::to_string(repeats));
        EXPECT_GT(batched.nf_mean, 0.0);
    }
}

TEST(RepeatBatch, ColdMatchesSequentialOnEveryBackend) {
    nn::Sequential model = tiny_vgg(12);
    const nn::Dataset test = tiny_dataset(15);
    for (const xbar::BackendKind backend :
         {xbar::BackendKind::kFast, xbar::BackendKind::kIdeal}) {
        EvalConfig config = cold_config(backend);
        config.repeats = 3;
        config.repeat_batch = true;
        const EvalResult batched = evaluate_on_crossbars(model, test, config);
        config.repeat_batch = false;
        const EvalResult sequential =
            evaluate_on_crossbars(model, test, config);
        expect_identical(batched, sequential,
                         std::string("backend=") + xbar::backend_name(backend));
    }
}

TEST(RepeatBatch, WarmSingleRepeatMatchesSequential) {
    // With one repeat there is no cross-repeat warm chaining to differ on:
    // the batched path's lane-0 warm chain visits tiles in the same worker
    // partition order as the sequential path, so even warm-started solves
    // are bit-identical.
    nn::Sequential model = tiny_vgg(12);
    const nn::Dataset test = tiny_dataset(15);
    EvalConfig config = cold_config(xbar::BackendKind::kCircuit);
    config.warm_start_solves = true;
    config.repeats = 1;
    config.repeat_batch = true;
    const EvalResult batched = evaluate_on_crossbars(model, test, config);
    config.repeat_batch = false;
    const EvalResult sequential = evaluate_on_crossbars(model, test, config);
    expect_identical(batched, sequential, "warm repeats=1");
}

TEST(RepeatBatch, PerRepeatResultsMatchSingleSeedRuns) {
    // evaluate_repeats_on_crossbars with N seeds must equal N independent
    // single-seed calls — the contract the sweep runner's group execution
    // relies on for byte-identical per-repeat CellResults.
    nn::Sequential model = tiny_vgg(12);
    const nn::Dataset test = tiny_dataset(15);
    EvalConfig config = cold_config(xbar::BackendKind::kCircuit);
    const std::vector<std::uint64_t> seeds{21, 909, 4242};
    const std::vector<EvalResult> grouped =
        evaluate_repeats_on_crossbars(model, test, config, seeds);
    ASSERT_EQ(grouped.size(), seeds.size());
    for (std::size_t r = 0; r < seeds.size(); ++r) {
        const std::vector<EvalResult> one = evaluate_repeats_on_crossbars(
            model, test, config, {seeds[r]});
        ASSERT_EQ(one.size(), 1u);
        expect_identical(grouped[r], one[0],
                         "seed=" + std::to_string(seeds[r]));
    }
}

}  // namespace
}  // namespace xs::core
