#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace xs::util {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.5, 2.25);
        EXPECT_GE(u, -3.5);
        EXPECT_LT(u, 2.25);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalTailProbabilities) {
    // Guards the ziggurat's wedge/tail handling: the empirical CDF must
    // match the normal at several thresholds, including past the ziggurat's
    // R = 3.44 where only the explicit tail sampler produces values.
    Rng rng(29);
    const int n = 2000000;
    int over1 = 0, over2 = 0, over3_5 = 0;
    double max_abs = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        const double a = std::fabs(x);
        if (a > 1.0) ++over1;
        if (a > 2.0) ++over2;
        if (a > 3.5) ++over3_5;
        max_abs = std::max(max_abs, a);
    }
    EXPECT_NEAR(static_cast<double>(over1) / n, 0.31731, 0.002);
    EXPECT_NEAR(static_cast<double>(over2) / n, 0.04550, 0.001);
    EXPECT_NEAR(static_cast<double>(over3_5) / n, 4.65e-4, 1.5e-4);
    EXPECT_GT(max_abs, 3.8);  // the tail past R is actually reachable
    EXPECT_LT(max_abs, 7.0);
}

TEST(Rng, NormalWithParams) {
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

// normal_fill must reproduce the serial normal() stream bit-for-bit: the
// block fast path, wedge rejections, and the layer-0 tail sampler all ride
// the same stream positions. 200k draws make every path fire many times
// (~2% wedge, ~0.06% tail), and odd counts exercise the serial tail of the
// block loop plus FIFO hand-off at every block phase.
TEST(Rng, NormalFillMatchesSerialBitExact) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{15},
                                    std::size_t{16}, std::size_t{17},
                                    std::size_t{1024}, std::size_t{200003}}) {
        Rng serial(777), block(777);
        std::vector<double> expect(count), got(count);
        for (std::size_t i = 0; i < count; ++i) expect[i] = serial.normal();
        block.normal_fill(got.data(), count);
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(expect[i], got[i]) << "draw " << i << " of " << count;
        // The two generators must also leave the stream at the same
        // position, or later consumers would diverge.
        EXPECT_EQ(serial.next_u64(), block.next_u64());
    }
}

TEST(Rng, PermutationIsValid) {
    Rng rng(19);
    const auto perm = rng.permutation(257);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 257u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationShuffles) {
    Rng rng(23);
    const auto perm = rng.permutation(100);
    std::size_t fixed = 0;
    for (std::size_t i = 0; i < perm.size(); ++i)
        if (perm[i] == i) ++fixed;
    EXPECT_LT(fixed, 10u);  // expected ~1 fixed point
}

TEST(Rng, SplitStreamsAreIndependent) {
    Rng parent(31);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
    Rng p1(37), p2(37);
    Rng a = p1.split(5), b = p2.split(5);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIndexInRange) {
    Rng rng(41);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, ReseedResetsSequence) {
    Rng rng(43);
    const auto first = rng.next_u64();
    rng.next_u64();
    rng.reseed(43);
    EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace xs::util
