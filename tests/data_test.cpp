#include "data/synthetic.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <map>

namespace xs::data {
namespace {

TEST(Synthetic, ShapesAndLabelRange) {
    const SyntheticSpec spec = cifar10_like(1);
    const nn::Dataset d = generate(spec, 100);
    EXPECT_EQ(d.images.shape(), (tensor::Shape{100, 3, 32, 32}));
    EXPECT_EQ(d.labels.size(), 100u);
    EXPECT_EQ(d.num_classes, 10);
    for (const auto label : d.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 10);
    }
}

TEST(Synthetic, LabelsRoughlyBalanced) {
    const SyntheticSpec spec = cifar10_like(2);
    const nn::Dataset d = generate(spec, 500);
    std::map<std::int64_t, int> counts;
    for (const auto label : d.labels) counts[label]++;
    EXPECT_EQ(counts.size(), 10u);
    for (const auto& [label, count] : counts) EXPECT_EQ(count, 50);
}

TEST(Synthetic, DeterministicForSeed) {
    const SyntheticSpec spec = cifar10_like(3);
    const nn::Dataset a = generate(spec, 20);
    const nn::Dataset b = generate(spec, 20);
    EXPECT_TRUE(tensor::allclose(a.images, b.images, 0.0f, 0.0f));
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
    const nn::Dataset a = generate(cifar10_like(4), 10);
    const nn::Dataset b = generate(cifar10_like(5), 10);
    EXPECT_GT(tensor::max_abs_diff(a.images, b.images), 0.1f);
}

TEST(Synthetic, Cifar100HasHundredClasses) {
    const SyntheticSpec spec = cifar100_like(6);
    const nn::Dataset d = generate(spec, 400);
    EXPECT_EQ(d.num_classes, 100);
    std::map<std::int64_t, int> counts;
    for (const auto label : d.labels) counts[label]++;
    EXPECT_EQ(counts.size(), 100u);
}

TEST(Synthetic, TrainTestSplitsDiffer) {
    const auto tt = generate_split(cifar10_like(7), 50, 50);
    EXPECT_EQ(tt.train.size(), 50);
    EXPECT_EQ(tt.test.size(), 50);
    EXPECT_GT(tensor::max_abs_diff(tt.train.images, tt.test.images), 0.1f);
}

TEST(Synthetic, PixelStatisticsBounded) {
    const nn::Dataset d = generate(cifar10_like(8), 50);
    const double m = tensor::mean(d.images);
    EXPECT_NEAR(m, 0.0, 1.0);  // roughly centred
    EXPECT_LT(tensor::max_abs(d.images), 30.0f);  // no blow-ups
}

TEST(Synthetic, ClassesAreStatisticallyDistinct) {
    // Mean image of two different classes must differ measurably; this is a
    // weak learnability proxy that does not require training.
    const SyntheticSpec spec = cifar10_like(9);
    const nn::Dataset d = generate(spec, 600);
    const std::int64_t item = 3 * 32 * 32;
    std::map<std::int64_t, std::vector<double>> means;
    std::map<std::int64_t, int> counts;
    for (std::int64_t i = 0; i < d.images.dim(0); ++i) {
        auto& m = means[d.labels[static_cast<std::size_t>(i)]];
        m.resize(static_cast<std::size_t>(item), 0.0);
        for (std::int64_t j = 0; j < item; ++j) m[static_cast<std::size_t>(j)] += d.images[i * item + j];
        counts[d.labels[static_cast<std::size_t>(i)]]++;
    }
    double max_dist = 0.0;
    for (auto& [label, m] : means)
        for (auto& v : m) v /= counts[label];
    for (std::int64_t a = 0; a < 10; ++a)
        for (std::int64_t b = a + 1; b < 10; ++b) {
            double dist = 0.0;
            for (std::int64_t j = 0; j < item; ++j) {
                const double diff = means[a][static_cast<std::size_t>(j)] -
                                    means[b][static_cast<std::size_t>(j)];
                dist += diff * diff;
            }
            max_dist = std::max(max_dist, dist);
        }
    EXPECT_GT(max_dist, 1.0);
}

TEST(Synthetic, JitterIncreasesWithSpec) {
    // Same class, higher jitter -> higher within-class variance.
    SyntheticSpec lo = cifar10_like(10);
    lo.class_jitter = 0.2f;
    SyntheticSpec hi = cifar10_like(10);
    hi.class_jitter = 2.0f;
    hi.pixel_noise = lo.pixel_noise;  // isolate the jitter effect

    auto variance_of_class0 = [](const nn::Dataset& d) {
        const std::int64_t item = 3 * 32 * 32;
        std::vector<const float*> imgs;
        for (std::int64_t i = 0; i < d.images.dim(0); ++i)
            if (d.labels[static_cast<std::size_t>(i)] == 0)
                imgs.push_back(d.images.data() + i * item);
        double var = 0.0;
        for (std::int64_t j = 0; j < item; ++j) {
            double mu = 0.0;
            for (const float* img : imgs) mu += img[j];
            mu /= static_cast<double>(imgs.size());
            double v = 0.0;
            for (const float* img : imgs) v += (img[j] - mu) * (img[j] - mu);
            var += v / static_cast<double>(imgs.size());
        }
        return var;
    };
    const double v_lo = variance_of_class0(generate(lo, 300));
    const double v_hi = variance_of_class0(generate(hi, 300));
    EXPECT_GT(v_hi, v_lo);
}

}  // namespace
}  // namespace xs::data
