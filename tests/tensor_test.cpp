#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace xs::tensor {
namespace {

TEST(Tensor, ConstructionAndFill) {
    Tensor t({2, 3}, 1.5f);
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.rank(), 2u);
    for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
    t.zero();
    for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, At2d) {
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t[5], 7.0f);
    EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, At4d) {
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 9.0f;
    EXPECT_FLOAT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t({2, 6});
    for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
    const Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_EQ(r.dim(1), 4);
    for (std::int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, ReshapeBadCountThrows) {
    Tensor t({2, 3});
    EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ShapeToString) {
    EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
    EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Ops, AddSubMul) {
    Tensor a({4}), b({4});
    for (int i = 0; i < 4; ++i) {
        a[i] = static_cast<float>(i);
        b[i] = 2.0f;
    }
    const Tensor s = add(a, b);
    const Tensor d = sub(a, b);
    const Tensor m = mul(a, b);
    for (int i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(s[i], i + 2.0f);
        EXPECT_FLOAT_EQ(d[i], i - 2.0f);
        EXPECT_FLOAT_EQ(m[i], i * 2.0f);
    }
}

TEST(Ops, ShapeMismatchThrows) {
    Tensor a({2}), b({3});
    EXPECT_THROW(add(a, b), std::invalid_argument);
    EXPECT_THROW(mul(a, b), std::invalid_argument);
}

TEST(Ops, AxpyInplace) {
    Tensor a({3}, 1.0f), b({3}, 2.0f);
    axpy_inplace(a, 0.5f, b);
    for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a[i], 2.0f);
}

TEST(Ops, Reductions) {
    Tensor a({4});
    a[0] = 1;
    a[1] = -2;
    a[2] = 3;
    a[3] = -4;
    EXPECT_DOUBLE_EQ(sum(a), -2.0);
    EXPECT_DOUBLE_EQ(mean(a), -0.5);
    EXPECT_FLOAT_EQ(max_abs(a), 4.0f);
    EXPECT_NEAR(l2_norm(a), std::sqrt(30.0), 1e-9);
}

TEST(Ops, AbsMoments) {
    const float v[4] = {1.0f, -1.0f, 3.0f, -3.0f};
    double mu, sigma;
    abs_moments(v, 4, mu, sigma);
    EXPECT_DOUBLE_EQ(mu, 2.0);
    EXPECT_DOUBLE_EQ(sigma, 1.0);
}

TEST(Ops, ArgmaxRow) {
    Tensor a({2, 3});
    a.at(0, 0) = 1;
    a.at(0, 1) = 5;
    a.at(0, 2) = 2;
    a.at(1, 0) = 9;
    a.at(1, 1) = 0;
    a.at(1, 2) = 3;
    EXPECT_EQ(argmax_row(a, 0), 1);
    EXPECT_EQ(argmax_row(a, 1), 0);
}

TEST(Ops, Transpose) {
    Tensor a({2, 3});
    for (std::int64_t i = 0; i < 6; ++i) a[i] = static_cast<float>(i);
    const Tensor t = transpose(a);
    EXPECT_EQ(t.dim(0), 3);
    EXPECT_EQ(t.dim(1), 2);
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            EXPECT_FLOAT_EQ(t.at(j, i), a.at(i, j));
}

TEST(Ops, TransposeInvolution) {
    util::Rng rng(3);
    Tensor a({5, 7});
    fill_normal(a, rng, 0.0f, 1.0f);
    EXPECT_TRUE(allclose(transpose(transpose(a)), a, 0.0f, 0.0f));
}

TEST(Ops, FillKaimingVariance) {
    util::Rng rng(5);
    Tensor a({20000});
    fill_kaiming(a, rng, 50);
    double sq = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        sq += static_cast<double>(a[i]) * a[i];
    EXPECT_NEAR(sq / a.numel(), 2.0 / 50.0, 0.004);
}

TEST(Ops, Allclose) {
    Tensor a({3}, 1.0f), b({3}, 1.0f);
    EXPECT_TRUE(allclose(a, b));
    b[1] = 1.1f;
    EXPECT_FALSE(allclose(a, b, 1e-5f, 1e-5f));
    EXPECT_NEAR(max_abs_diff(a, b), 0.1f, 1e-6f);
}

TEST(Serialize, RoundTrip) {
    util::Rng rng(7);
    Tensor a({3, 4, 5});
    fill_normal(a, rng, 0.0f, 2.0f);
    std::stringstream ss;
    write_tensor(ss, a);
    const Tensor b = read_tensor(ss);
    EXPECT_TRUE(allclose(a, b, 0.0f, 0.0f));
    EXPECT_EQ(a.shape(), b.shape());
}

TEST(Serialize, CorruptMagicThrows) {
    std::stringstream ss;
    ss << "NOPE";
    EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(Serialize, TruncatedThrows) {
    util::Rng rng(9);
    Tensor a({4, 4});
    fill_normal(a, rng, 0.0f, 1.0f);
    std::stringstream ss;
    write_tensor(ss, a);
    std::string s = ss.str();
    s.resize(s.size() / 2);
    std::stringstream cut(s);
    EXPECT_THROW(read_tensor(cut), std::runtime_error);
}

}  // namespace
}  // namespace xs::tensor
