// Process-supervision coverage (sweep/supervisor.h) on the tiny grid, with
// real faults injected through XS_FAULT: worker crashes are respawned and
// re-dealt, hung cells are watchdog-SIGKILLed, poison cells are quarantined
// instead of aborting, torn manifest records are skipped and re-executed —
// and through all of it the aggregate CSV stays byte-identical to an
// uninterrupted single-process run (minus quarantined cells' groups).
//
// This binary is its own worker: it provides main() (CMake links it without
// gtest_main) and re-execs itself with --worker, exactly like the
// sweep_runner driver does in production.
#include "core/experiments.h"
#include "sweep/runner.h"
#include "sweep/supervisor.h"
#include "util/faultinject.h"
#include "util/flags.h"
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace xs::sweep {
namespace {

std::string test_dir() {
    const auto dir =
        std::filesystem::temp_directory_path() / "xs_sweep_supervisor";
    std::filesystem::create_directories(dir);
    return dir.string();
}

// One flag list drives everything: the test-side context/spec AND the
// worker command line, so the coordinator and its worker processes parse
// identical configurations by construction.
std::vector<std::string> base_args() {
    return {"--width=0.0625",
            "--train-count=96",
            "--test-count=48",
            "--epochs=1",
            "--batch=16",
            "--sizes=16",
            "--prune=none,cf:0.8",
            "--sweep-repeats=2",
            "--out-dir=" + test_dir(),
            "--cache-dir=" + test_dir() + "/models"};
}

util::Flags tiny_flags() {
    static std::vector<std::string> args = base_args();
    std::vector<char*> argv;
    static const char* name = "sweep_supervisor_test";
    argv.push_back(const_cast<char*>(name));
    for (auto& arg : args) argv.push_back(arg.data());
    return util::Flags(static_cast<int>(argv.size()), argv.data());
}

core::ExperimentContext& ctx() {
    static const bool cleaned = [] {
        std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                    "xs_sweep_supervisor");
        return true;
    }();
    (void)cleaned;
    static util::Flags flags = tiny_flags();
    static core::ExperimentContext context(flags);
    return context;
}

SweepSpec tiny_spec() { return parse_sweep_spec(tiny_flags()); }

SupervisorOptions sup_opts() {
    SupervisorOptions sup;
    sup.workers = 2;
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    EXPECT_GT(n, 0);
    exe[n] = '\0';
    sup.worker_cmd.push_back(exe);
    for (const std::string& a : base_args()) sup.worker_cmd.push_back(a);
    sup.retry_backoff_ms = 20.0;  // keep retry latency out of test time
    return sup;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// Uninterrupted single-process reference run (once per process): the bytes
// every supervised variant must reproduce.
const std::string& baseline_csv() {
    static const std::string csv = [] {
        SweepOptions opts;
        opts.csv_name = "baseline.csv";
        opts.manifest_name = "baseline.jsonl";
        SweepRunner runner(ctx(), tiny_spec(), opts);
        const SweepSummary summary = runner.run();
        EXPECT_EQ(summary.cells_executed, 4);
        return slurp(summary.csv_path);
    }();
    EXPECT_FALSE(csv.empty());
    return csv;
}

// Export a fault plan to the *worker processes* via the environment. The
// coordinator's own (cached) plan is cleared so only children act on it.
struct EnvFault {
    explicit EnvFault(const std::string& plan) {
        ::setenv("XS_FAULT", plan.c_str(), 1);
        util::fault::install_plan("");
    }
    ~EnvFault() {
        ::unsetenv("XS_FAULT");
        util::fault::install_plan("");
    }
};

std::string drop_lines_containing(const std::string& text,
                                  const std::string& needle) {
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line))
        if (line.find(needle) == std::string::npos) out += line + "\n";
    return out;
}

TEST(SweepSupervisor, MatchesSingleProcessByteForByte) {
    SweepOptions opts;
    opts.csv_name = "sup_clean.csv";
    opts.manifest_name = "sup_clean.jsonl";
    const SweepSummary summary =
        run_supervised(ctx(), tiny_spec(), opts, sup_opts());
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_EQ(summary.worker_restarts, 0);
    EXPECT_EQ(summary.watchdog_kills, 0);
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
}

TEST(SweepSupervisor, CrashedWorkerIsRespawnedAndCellRedealt) {
    baseline_csv();
    EnvFault fault("crash@cell:2");  // SIGKILL mid-cell, first attempt only
    SweepOptions opts;
    opts.csv_name = "sup_crash.csv";
    opts.manifest_name = "sup_crash.jsonl";
    const SweepSummary summary =
        run_supervised(ctx(), tiny_spec(), opts, sup_opts());
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_failed, 0);
    EXPECT_GE(summary.worker_restarts, 1);
    // The retried cell recomputes the same deterministic bytes.
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());

    // The recovered cell's manifest line records the extra attempt.
    const auto manifest = load_manifest(summary.manifest_path);
    ASSERT_EQ(manifest.size(), 4u);
    std::int64_t retried = 0;
    for (const auto& [id, r] : manifest) {
        EXPECT_EQ(r.status, "ok") << id;
        if (r.attempts > 1) ++retried;
    }
    EXPECT_EQ(retried, 1);
}

TEST(SweepSupervisor, KilledMidSweepResumesByteIdentical) {
    baseline_csv();
    SweepOptions opts;
    opts.csv_name = "sup_resume.csv";
    opts.manifest_name = "sup_resume.jsonl";
    opts.max_cells = 2;  // deterministic mid-sweep "kill"
    const SweepSummary partial =
        run_supervised(ctx(), tiny_spec(), opts, sup_opts());
    EXPECT_EQ(partial.cells_executed, 2);
    EXPECT_EQ(partial.cells_pending, 2);

    // Resume under supervision with a crash injected into one of the two
    // remaining cells: kill + resume + retry, one CSV, same bytes.
    EnvFault fault("crash@cell:3");
    opts.max_cells = -1;
    opts.resume = true;
    const SweepSummary resumed =
        run_supervised(ctx(), tiny_spec(), opts, sup_opts());
    EXPECT_EQ(resumed.cells_resumed, 2);
    EXPECT_EQ(resumed.cells_executed, 2);
    EXPECT_GE(resumed.worker_restarts, 1);
    EXPECT_EQ(slurp(resumed.csv_path), baseline_csv());
}

TEST(SweepSupervisor, WatchdogKillsHungWorkerAndSweepRecovers) {
    baseline_csv();
    EnvFault fault("hang@cell:1");  // blocks forever on the first attempt
    SweepOptions opts;
    opts.csv_name = "sup_hang.csv";
    opts.manifest_name = "sup_hang.jsonl";
    opts.cell_budget_ms = 5000.0;  // watchdog deadline (tiny cells run ≪ 5 s)
    const SweepSummary summary =
        run_supervised(ctx(), tiny_spec(), opts, sup_opts());
    EXPECT_GE(summary.watchdog_kills, 1);
    EXPECT_GE(summary.worker_restarts, 1);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_failed, 0);
    // A watchdog kill is a budget overrun: the supervised path must count
    // it into cells_over_budget exactly like the in-process runner counts
    // a slow cell (it used to report 0 here).
    EXPECT_GE(summary.cells_over_budget, 1);
    EXPECT_GE(summary.cell_retries, 1);  // the killed cell was re-dealt
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
}

#if XS_TELEMETRY_ENABLED
// The shutdown telemetry handshake end to end: every worker answers
// kShutdown with a kMetrics frame, the coordinator merges the frames with
// its own snapshot, and the result lands in SweepSummary::metrics_json plus
// an uncounted {"metrics":...} manifest record that the resume loader
// skips without flagging corruption.
TEST(SweepSupervisor, MetricsSnapshotMergesWorkersAndCoordinator) {
    baseline_csv();
    util::metrics::reset();  // drop earlier tests' coordinator-side counts
    SweepOptions opts;
    opts.csv_name = "sup_metrics.csv";
    opts.manifest_name = "sup_metrics.jsonl";
    const SweepSummary summary =
        run_supervised(ctx(), tiny_spec(), opts, sup_opts());
    EXPECT_EQ(summary.cells_executed, 4);

    ASSERT_FALSE(summary.metrics_json.empty());
    util::metrics::Snapshot snap;
    ASSERT_TRUE(util::metrics::from_json(summary.metrics_json, snap));
    // Coordinator-side: one sweep.cells.done per durable ack.
    EXPECT_EQ(snap.counters.at("sweep.cells.done"), 4u);
    // Worker-side, summed over both workers' kMetrics frames.
    EXPECT_EQ(snap.counters.at("sweep.cells.executed"), 4u);
    // Hot-path telemetry only the workers produced — proof the wire merge
    // actually folded their frames in (the coordinator ran no solves after
    // the reset).
    EXPECT_GT(snap.counters.at("xbar.solve.solves"), 0u);
    EXPECT_EQ(snap.histograms.at("sweep.cell.ns").count, 4u);

    // The manifest carries the record, and reloads without corruption.
    const std::string raw = slurp(summary.manifest_path);
    EXPECT_NE(raw.find("{\"metrics\":{"), std::string::npos);
    const ManifestLoad load = load_manifest_file(summary.manifest_path);
    EXPECT_EQ(load.skipped_lines, 0);
    EXPECT_EQ(load.results.size(), 4u);
}
#endif

TEST(SweepSupervisor, PoisonCellIsQuarantinedNotFatal) {
    baseline_csv();
    EnvFault fault("fail@cell:3*");  // throws on every attempt
    SweepOptions opts;
    opts.csv_name = "sup_poison.csv";
    opts.manifest_name = "sup_poison.jsonl";
    SupervisorOptions sup = sup_opts();
    sup.max_cell_retries = 1;  // 2 attempts, then quarantine
    const SweepSummary summary =
        run_supervised(ctx(), tiny_spec(), opts, sup);
    EXPECT_EQ(summary.cells_executed, 3);
    EXPECT_EQ(summary.cells_failed, 1);
    const std::vector<SweepCell> cells = tiny_spec().expand();
    ASSERT_EQ(summary.failed_cells.size(), 1u);
    EXPECT_EQ(summary.failed_cells[0], cells[3].id());

    // The CSV is the baseline minus the poisoned cell's (cf) group — the
    // healthy groups' bytes are untouched.
    EXPECT_EQ(slurp(summary.csv_path),
              drop_lines_containing(baseline_csv(), ",cf,"));

    // The manifest records the failure taxonomy.
    const auto manifest = load_manifest(summary.manifest_path);
    const CellResult& failed = manifest.at(cells[3].id());
    EXPECT_TRUE(failed.failed());
    EXPECT_EQ(failed.attempts, 2);
    EXPECT_NE(failed.reason.find("injected fault"), std::string::npos);

    // A resume skips the quarantined cell (recorded = settled) instead of
    // hammering it again.
    opts.resume = true;
    const SweepSummary again = run_supervised(ctx(), tiny_spec(), opts, sup);
    EXPECT_EQ(again.cells_resumed, 4);
    EXPECT_EQ(again.cells_executed, 0);
    EXPECT_EQ(again.cells_failed, 1);
}

TEST(SweepSupervisor, PoolExhaustionAbortsResumably) {
    baseline_csv();
    EnvFault fault("crash@cell:0*");  // every attempt crashes the worker
    SweepOptions opts;
    opts.csv_name = "sup_dead.csv";
    opts.manifest_name = "sup_dead.jsonl";
    SupervisorOptions sup = sup_opts();
    sup.workers = 1;
    sup.max_worker_restarts = 0;  // first death retires the only slot
    EXPECT_THROW(run_supervised(ctx(), tiny_spec(), opts, sup),
                 std::exception);
}

TEST(SweepSupervisor, TornManifestRecordIsSkippedAndReExecuted) {
    baseline_csv();
    // Tear the 2nd data record mid-append (single-process runner, so the
    // fault plan must live in *this* process): the 3rd record glues onto
    // the torn half — classic mid-line corruption, not just a lost tail.
    util::fault::install_plan("truncate-manifest@record:1");
    SweepOptions opts;
    opts.csv_name = "torn.csv";
    opts.manifest_name = "torn.jsonl";
    {
        SweepRunner runner(ctx(), tiny_spec(), opts);
        runner.run();
    }
    util::fault::install_plan("");

    opts.resume = true;
    SweepRunner resumed(ctx(), tiny_spec(), opts);
    const SweepSummary summary = resumed.run();
    // One physical line lost two records: both cells re-execute.
    EXPECT_EQ(summary.manifest_lines_skipped, 1);
    EXPECT_EQ(summary.cells_resumed, 2);
    EXPECT_EQ(summary.cells_executed, 2);
    EXPECT_EQ(slurp(summary.csv_path), baseline_csv());
}

}  // namespace
}  // namespace xs::sweep

// Own main: a --worker invocation never reaches gtest — it becomes a sweep
// worker process wired to the pipes the coordinator passed down.
int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--worker") {
            const xs::util::Flags flags(argc, argv);
            xs::core::ExperimentContext ctx(flags);
            const xs::sweep::SweepSpec spec = xs::sweep::parse_sweep_spec(flags);
            return xs::sweep::worker_main(
                ctx, spec, static_cast<int>(flags.get_int("wire-in", -1)),
                static_cast<int>(flags.get_int("wire-out", -1)));
        }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
