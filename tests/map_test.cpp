#include "map/compaction.h"
#include "map/compression.h"
#include "map/matrix_view.h"
#include "map/tiling.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <set>

namespace xs::map {
namespace {

using tensor::Tensor;

TEST(MatrixView, ConvExtractInjectRoundTrip) {
    util::Rng rng(1);
    nn::Conv2d conv(3, 5, 3, 1, 1, rng);
    const Tensor original = conv.weight().value;
    const Tensor m = extract_matrix(conv);
    EXPECT_EQ(m.dim(0), 27);  // Cin·k·k
    EXPECT_EQ(m.dim(1), 5);   // Cout
    inject_matrix(conv, m);
    EXPECT_TRUE(tensor::allclose(conv.weight().value, original, 0.0f, 0.0f));
}

TEST(MatrixView, ConvMatrixOrientation) {
    util::Rng rng(2);
    nn::Conv2d conv(2, 3, 3, 1, 1, rng);
    const Tensor m = extract_matrix(conv);
    // matrix(r, c) == weight[c, r] in flattened (Cout, Cin·k·k) layout.
    for (std::int64_t c = 0; c < 3; ++c)
        for (std::int64_t r = 0; r < 18; ++r)
            EXPECT_FLOAT_EQ(m.at(r, c), conv.weight().value[c * 18 + r]);
}

TEST(MatrixView, LinearExtractInjectRoundTrip) {
    util::Rng rng(3);
    nn::Linear fc(7, 4, rng);
    const Tensor original = fc.weight().value;
    const Tensor m = extract_matrix(fc);
    EXPECT_EQ(m.dim(0), 7);
    EXPECT_EQ(m.dim(1), 4);
    inject_matrix(fc, m);
    EXPECT_TRUE(tensor::allclose(fc.weight().value, original, 0.0f, 0.0f));
}

TEST(MatrixView, MappableLayersOfVgg) {
    nn::VggConfig config;
    config.width = 0.0625;
    util::Rng rng(4);
    nn::Sequential model = nn::build_vgg(config, rng);
    const auto layers = mappable_layers(model);
    EXPECT_EQ(layers.size(), 9u);  // 8 convs + fc1
    EXPECT_EQ(layers.front()->name(), "conv1");
    EXPECT_EQ(layers.back()->name(), "fc1");
}

TEST(Compaction, DropsZeroRowsAndCols) {
    Tensor m({4, 5}, 0.0f);
    m.at(0, 1) = 1.0f;
    m.at(2, 1) = 2.0f;
    m.at(2, 3) = 3.0f;
    const Compaction c = compact_dense(m);
    EXPECT_EQ(c.rows, (std::vector<std::int64_t>{0, 2}));
    EXPECT_EQ(c.cols, (std::vector<std::int64_t>{1, 3}));
    EXPECT_EQ(c.matrix.dim(0), 2);
    EXPECT_EQ(c.matrix.dim(1), 2);
    EXPECT_FLOAT_EQ(c.matrix.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c.matrix.at(1, 1), 3.0f);
}

TEST(Compaction, RoundTripRestoresMatrix) {
    util::Rng rng(5);
    Tensor m({10, 8});
    tensor::fill_normal(m, rng, 0.0f, 1.0f);
    // Zero two rows and three columns.
    for (std::int64_t j = 0; j < 8; ++j) m.at(3, j) = m.at(7, j) = 0.0f;
    for (std::int64_t i = 0; i < 10; ++i) m.at(i, 0) = m.at(i, 4) = m.at(i, 5) = 0.0f;

    const Compaction c = compact_dense(m);
    const Tensor restored = uncompact(c, c.matrix);
    EXPECT_TRUE(tensor::allclose(restored, m, 0.0f, 0.0f));
}

TEST(Compaction, AllZeroMatrixStaysWellFormed) {
    Tensor m({3, 3}, 0.0f);
    const Compaction c = compact_dense(m);
    EXPECT_EQ(c.matrix.dim(0), 1);
    EXPECT_EQ(c.matrix.dim(1), 1);
    const Tensor restored = uncompact(c, c.matrix);
    EXPECT_TRUE(tensor::allclose(restored, m, 0.0f, 0.0f));
}

TEST(TileDense, CountsAndCoverage) {
    const Tiling t = tile_dense(70, 33, 32);
    EXPECT_EQ(t.count(), 3 * 2);
    // Every matrix entry covered exactly once.
    std::set<std::pair<std::int64_t, std::int64_t>> covered;
    for (const Tile& tile : t.tiles)
        for (const auto r : tile.rows)
            for (const auto c : tile.cols) {
                EXPECT_TRUE(covered.emplace(r, c).second);
            }
    EXPECT_EQ(covered.size(), 70u * 33u);
}

TEST(TileDense, ExactFit) {
    EXPECT_EQ(tile_dense(64, 64, 32).count(), 4);
    EXPECT_EQ(tile_dense(32, 32, 32).count(), 1);
    EXPECT_EQ(tile_dense(1, 1, 32).count(), 1);
}

class TilingScheme : public ::testing::TestWithParam<int> {};

TEST_P(TilingScheme, ExtractScatterRoundTrip) {
    const std::int64_t xbar = GetParam();
    util::Rng rng(6);
    Tensor m({40, 24});
    tensor::fill_normal(m, rng, 0.0f, 1.0f);
    const Tiling t = tile_dense(40, 24, xbar);
    Tensor out({40, 24}, 0.0f);
    for (const Tile& tile : t.tiles) {
        const Tensor sub = extract_tile(m, tile, xbar);
        scatter_tile(out, tile, sub);
    }
    EXPECT_TRUE(tensor::allclose(out, m, 0.0f, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TilingScheme, ::testing::Values(8, 16, 32, 64));

TEST(TileXcs, SkipsZeroSegmentsAndPacks) {
    // 8×6 matrix, crossbar 4: row blocks {0-3}, {4-7}. Zero out the segment
    // (block 0, col 2) and the whole column 5.
    util::Rng rng(7);
    Tensor m({8, 6});
    tensor::fill_normal(m, rng, 1.0f, 0.1f);
    for (std::int64_t r = 0; r < 4; ++r) m.at(r, 2) = 0.0f;
    for (std::int64_t r = 0; r < 8; ++r) m.at(r, 5) = 0.0f;

    const Tiling t = tile_xcs(m, 4);
    // Block 0: survivors {0,1,3,4} -> 1 tile; block 1: {0,1,2,3,4} -> 2 tiles.
    EXPECT_EQ(t.count(), 3);

    // Round-trip of nonzero entries.
    Tensor out({8, 6}, 0.0f);
    for (const Tile& tile : t.tiles)
        scatter_tile(out, tile, extract_tile(m, tile, 4));
    EXPECT_TRUE(tensor::allclose(out, m, 0.0f, 0.0f));
}

TEST(TileXrs, SkipsZeroRowSegments) {
    util::Rng rng(8);
    Tensor m({6, 8});
    tensor::fill_normal(m, rng, 1.0f, 0.1f);
    for (std::int64_t c = 0; c < 4; ++c) m.at(2, c) = 0.0f;  // (row 2, block 0)
    for (std::int64_t c = 0; c < 8; ++c) m.at(5, c) = 0.0f;  // whole row 5

    const Tiling t = tile_xrs(m, 4);
    // Col block 0: surviving rows {0,1,3,4} -> 1 tile; block 1: {0..4} -> 2.
    EXPECT_EQ(t.count(), 3);

    Tensor out({6, 8}, 0.0f);
    for (const Tile& tile : t.tiles)
        scatter_tile(out, tile, extract_tile(m, tile, 4));
    EXPECT_TRUE(tensor::allclose(out, m, 0.0f, 0.0f));
}

TEST(TileXcs, DenseMatrixMatchesDenseTiling) {
    util::Rng rng(9);
    Tensor m({64, 48});
    tensor::fill_normal(m, rng, 1.0f, 0.1f);  // no zeros
    EXPECT_EQ(tile_xcs(m, 16).count(), tile_dense(64, 48, 16).count());
    EXPECT_EQ(tile_xrs(m, 16).count(), tile_dense(64, 48, 16).count());
}

TEST(ExtractTile, ZeroPadsPartialTiles) {
    Tensor m({3, 3}, 5.0f);
    Tile tile;
    tile.rows = {0, 1, 2};
    tile.cols = {0, 1, 2};
    const Tensor sub = extract_tile(m, tile, 4);
    EXPECT_EQ(sub.dim(0), 4);
    EXPECT_FLOAT_EQ(sub.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(sub.at(3, 3), 0.0f);
    EXPECT_FLOAT_EQ(sub.at(0, 3), 0.0f);
}

TEST(Compression, UnprunedIsUnity) {
    nn::VggConfig config;
    config.width = 0.0625;
    util::Rng rng(10);
    nn::Sequential model = nn::build_vgg(config, rng);
    const CrossbarBudget b = count_crossbars(model, prune::Method::kNone, 32);
    EXPECT_EQ(b.total, b.dense_total);
    EXPECT_DOUBLE_EQ(b.compression_rate(), 1.0);
    EXPECT_GT(b.total, 0);
}

TEST(Compression, ChannelFilterCompresses) {
    nn::VggConfig config;
    config.width = 0.25;
    util::Rng rng(11);
    nn::Sequential model = nn::build_vgg(config, rng);
    prune::PruneConfig pc;
    pc.method = prune::Method::kChannelFilter;
    pc.sparsity = 0.8;
    prune::prune_at_init(model, pc);
    const CrossbarBudget b =
        count_crossbars(model, prune::Method::kChannelFilter, 32);
    EXPECT_GT(b.compression_rate(), 2.0);
    EXPECT_LT(b.total, b.dense_total);
}

TEST(Compression, XcsCompressionNearInverseKeepRate) {
    // At paper-like widths, XCS compression ≈ 1/(1−s) (paper Table I shows
    // 4.26–5.57× at s=0.8 → ideal 5×).
    nn::VggConfig config;
    config.width = 1.0;
    util::Rng rng(12);
    nn::Sequential model = nn::build_vgg(config, rng);
    prune::PruneConfig pc;
    pc.method = prune::Method::kXbarColumn;
    pc.sparsity = 0.8;
    pc.segment_size = 32;
    prune::prune_at_init(model, pc);
    const CrossbarBudget b = count_crossbars(model, prune::Method::kXbarColumn, 32);
    EXPECT_GT(b.compression_rate(), 3.0);
    EXPECT_LT(b.compression_rate(), 6.0);
}

TEST(Compression, LayerEntriesSumToTotals) {
    nn::VggConfig config;
    config.width = 0.0625;
    util::Rng rng(13);
    nn::Sequential model = nn::build_vgg(config, rng);
    const CrossbarBudget b = count_crossbars(model, prune::Method::kNone, 16);
    std::int64_t dense = 0, total = 0;
    for (const auto& l : b.layers) {
        dense += l.dense_tiles;
        total += l.tiles;
    }
    EXPECT_EQ(dense, b.dense_total);
    EXPECT_EQ(total, b.total);
}

}  // namespace
}  // namespace xs::map
