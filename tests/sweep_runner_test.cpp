// End-to-end SweepRunner coverage on a deliberately tiny grid: manifest
// resume after a mid-sweep interruption reproduces the uninterrupted
// aggregate CSV byte for byte, the CSV is invariant to the shard count, and
// the thread-safe ExperimentContext prepares each shared model exactly once.
#include "core/experiments.h"
#include "sweep/runner.h"
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace xs::sweep {
namespace {

std::string test_dir() {
    const auto dir = std::filesystem::temp_directory_path() / "xs_sweep_runner";
    std::filesystem::create_directories(dir);
    return dir.string();
}

util::Flags tiny_flags() {
    static std::vector<std::string> args = {
        "--width=0.0625",  "--train-count=96", "--test-count=48",
        "--epochs=1",      "--batch=16",       "--sizes=16",
        "--out-dir=" + test_dir(), "--cache-dir=" + test_dir() + "/models"};
    std::vector<char*> argv;
    static const char* name = "sweep_runner_test";
    argv.push_back(const_cast<char*>(name));
    for (auto& arg : args) argv.push_back(arg.data());
    return util::Flags(static_cast<int>(argv.size()), argv.data());
}

SweepSpec tiny_spec() {
    SweepSpec spec;
    spec.variants = {"vgg11"};
    spec.class_counts = {10};
    spec.prunes = {{prune::Method::kNone, 0.0},
                   {prune::Method::kChannelFilter, 0.8}};
    spec.mitigations = {{}};
    spec.sizes = {16};
    spec.repeats = 2;
    return spec;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// All tests share one context (and its trained models / dataset). The
// directory is wiped once per process so no test can compare against stale
// output from a previous binary version.
core::ExperimentContext& ctx() {
    static const bool cleaned = [] {
        std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                    "xs_sweep_runner");
        return true;
    }();
    (void)cleaned;
    static util::Flags flags = tiny_flags();
    static core::ExperimentContext context(flags);
    return context;
}

SweepSummary run(const SweepOptions& opts) {
    SweepRunner runner(ctx(), tiny_spec(), opts);
    return runner.run();
}

TEST(SweepRunner, UninterruptedBaseline) {
    SweepOptions opts;
    opts.csv_name = "full.csv";
    opts.manifest_name = "full.jsonl";
    const SweepSummary summary = run(opts);
    EXPECT_EQ(summary.cells_total, 4);
    EXPECT_EQ(summary.cells_executed, 4);
    EXPECT_EQ(summary.cells_pending, 0);
    ASSERT_EQ(summary.rows.size(), 2u);
    for (const auto& row : summary.rows) {
        EXPECT_TRUE(row.complete());
        EXPECT_EQ(row.repeats_done, 2);
        EXPECT_GT(row.tiles, 0);
        EXPECT_GT(row.energy_pj, 0.0);
    }
    // Two groups -> header + two data rows.
    std::istringstream csv(slurp(summary.csv_path));
    std::string line;
    int lines = 0;
    while (std::getline(csv, line)) ++lines;
    EXPECT_EQ(lines, 3);
}

TEST(SweepRunner, InterruptedThenResumedCsvIsByteIdentical) {
    SweepOptions baseline;
    baseline.csv_name = "full.csv";
    baseline.manifest_name = "full.jsonl";
    run(baseline);  // idempotent; ensures full.csv exists

    SweepOptions opts;
    opts.csv_name = "resumed.csv";
    opts.manifest_name = "resumed.jsonl";
    opts.max_cells = 2;  // "kill" the sweep after two cells
    const SweepSummary partial = run(opts);
    EXPECT_EQ(partial.cells_executed, 2);
    EXPECT_EQ(partial.cells_pending, 2);
    // Only complete groups reach the aggregate CSV.
    std::istringstream csv(slurp(partial.csv_path));
    std::string line;
    int lines = 0;
    while (std::getline(csv, line)) ++lines;
    EXPECT_EQ(lines, 2);  // header + the one finished group

    // Simulate a crash mid-manifest-write on top of the interruption.
    {
        std::ofstream out(partial.manifest_path,
                          std::ios::app | std::ios::binary);
        out << "{\"cell\":\"vgg11-c10/cf";
    }

    opts.max_cells = -1;
    opts.resume = true;
    const SweepSummary resumed = run(opts);
    EXPECT_EQ(resumed.cells_resumed, 2);
    EXPECT_EQ(resumed.cells_executed, 2);
    EXPECT_EQ(resumed.cells_pending, 0);

    const std::string full = slurp(ctx().csv_path("full.csv"));
    ASSERT_FALSE(full.empty());
    EXPECT_EQ(slurp(resumed.csv_path), full);
}

TEST(SweepRunner, AggregateCsvInvariantToShardCount) {
    // Self-sufficient under --gtest_filter: (re)generate the baseline here.
    SweepOptions baseline;
    baseline.csv_name = "full.csv";
    baseline.manifest_name = "full.jsonl";
    run(baseline);
    const std::string full = slurp(ctx().csv_path("full.csv"));
    ASSERT_FALSE(full.empty());
    for (const std::int64_t shards : {1, 3, 7}) {
        SweepOptions opts;
        opts.shards = shards;
        opts.csv_name = "shards" + std::to_string(shards) + ".csv";
        opts.manifest_name = "shards" + std::to_string(shards) + ".jsonl";
        const SweepSummary summary = run(opts);
        EXPECT_EQ(summary.cells_executed, 4);
        EXPECT_EQ(slurp(summary.csv_path), full) << shards << " shards";
    }
}

TEST(SweepRunner, AggregateCsvInvariantToRepeatBatching) {
    // The lane-batched group path (the default; repeats of a grid point share
    // one compiled-instance set and one batched inference pass) must produce
    // the same aggregate CSV, byte for byte, as the legacy
    // one-evaluation-per-cell path — per-repeat FNV seeding plus cold-start
    // solves make every batched lane bit-identical to its sequential cell.
    // The manifest records must agree too, field by field, bit for bit
    // (everything except the wall-clock timing). Repeat counts: 1 hits the
    // scalar-lane fallback, 3 a partial group, 8 two full groups through the
    // evaluator's producer/consumer pipeline.
    for (const std::int64_t repeats : {1, 3, 8}) {
        SCOPED_TRACE("repeats=" + std::to_string(repeats));
        const std::string tag = "rb" + std::to_string(repeats);
        SweepSpec spec = tiny_spec();
        spec.prunes = {{prune::Method::kNone, 0.0}};
        spec.repeats = repeats;

        SweepOptions off;
        off.repeat_batch = false;
        off.csv_name = tag + "_off.csv";
        off.manifest_name = tag + "_off.jsonl";
        const SweepSummary legacy = SweepRunner(ctx(), spec, off).run();
        EXPECT_EQ(legacy.cells_executed, repeats);
        const std::string expected = slurp(legacy.csv_path);
        ASSERT_FALSE(expected.empty());

        SweepOptions on;
        on.csv_name = tag + "_on.csv";
        on.manifest_name = tag + "_on.jsonl";
        const SweepSummary batched = SweepRunner(ctx(), spec, on).run();
        EXPECT_EQ(batched.cells_executed, repeats);
        EXPECT_EQ(slurp(batched.csv_path), expected);

        const auto seq_man = load_manifest(legacy.manifest_path);
        const auto bat_man = load_manifest(batched.manifest_path);
        ASSERT_EQ(seq_man.size(), static_cast<std::size_t>(repeats));
        ASSERT_EQ(bat_man.size(), seq_man.size());
        for (const auto& [id, seq] : seq_man) {
            SCOPED_TRACE(id);
            const auto it = bat_man.find(id);
            ASSERT_NE(it, bat_man.end());
            const CellResult& bat = it->second;
            EXPECT_EQ(bat.backend, seq.backend);
            EXPECT_EQ(bat.status, seq.status);
            EXPECT_EQ(bat.tiles, seq.tiles);
            EXPECT_EQ(bat.solver_failures, seq.solver_failures);
            // Doubles round-trip the manifest at 17 significant digits, so
            // equality here is bit equality of the recorded values.
            EXPECT_EQ(bat.accuracy, seq.accuracy);
            EXPECT_EQ(bat.nf_mean, seq.nf_mean);
            EXPECT_EQ(bat.energy_pj, seq.energy_pj);
            EXPECT_EQ(bat.software_acc, seq.software_acc);
        }
    }

    // A partially-resumed group: after max_cells interrupts mid-group, the
    // remaining lanes batch as a smaller group with the same bytes.
    SweepSpec spec = tiny_spec();
    spec.prunes = {{prune::Method::kNone, 0.0}};
    spec.repeats = 3;
    SweepOptions off;
    off.repeat_batch = false;
    off.csv_name = "rb_resume_ref.csv";
    off.manifest_name = "rb_resume_ref.jsonl";
    const std::string expected = slurp(SweepRunner(ctx(), spec, off).run().csv_path);
    SweepOptions resume;
    resume.csv_name = "rb_resume.csv";
    resume.manifest_name = "rb_resume.jsonl";
    resume.max_cells = 1;  // interrupt with two of the group's lanes pending
    SweepRunner(ctx(), spec, resume).run();
    resume.max_cells = -1;
    resume.resume = true;
    const SweepSummary resumed = SweepRunner(ctx(), spec, resume).run();
    EXPECT_EQ(resumed.cells_resumed, 1);
    EXPECT_EQ(resumed.cells_executed, 2);
    EXPECT_EQ(slurp(resumed.csv_path), expected);
}

TEST(SweepRunner, ResumeRefusesDifferentConfiguration) {
    SweepOptions opts;
    opts.csv_name = "fp.csv";
    opts.manifest_name = "fp.jsonl";
    opts.max_cells = 1;
    run(opts);

    // Same out-dir, different training config: the recorded cells came from
    // another experiment, so resuming must fail loudly.
    std::vector<std::string> args = {
        "--width=0.0625",  "--train-count=96", "--test-count=48",
        "--epochs=2",      "--batch=16",       "--sizes=16",
        "--out-dir=" + test_dir(), "--cache-dir=" + test_dir() + "/models"};
    std::vector<char*> argv;
    static const char* name = "sweep_runner_test";
    argv.push_back(const_cast<char*>(name));
    for (auto& arg : args) argv.push_back(arg.data());
    const util::Flags flags(static_cast<int>(argv.size()), argv.data());
    core::ExperimentContext other(flags);

    opts.resume = true;
    opts.max_cells = -1;
    SweepRunner runner(other, tiny_spec(), opts);
    EXPECT_THROW(runner.run(), std::exception);
}

TEST(SweepRunner, BackendAxisRecordsBackendAndFastTracksCircuit) {
    SweepOptions opts;
    opts.csv_name = "backends.csv";
    opts.manifest_name = "backends.jsonl";
    SweepSpec spec = tiny_spec();
    spec.prunes = {{prune::Method::kNone, 0.0}};
    spec.backends = {xbar::BackendKind::kCircuit, xbar::BackendKind::kFast};
    SweepRunner runner(ctx(), spec, opts);
    const SweepSummary summary = runner.run();

    ASSERT_EQ(summary.rows.size(), 2u);
    const GroupRow& circuit = summary.rows[0];
    const GroupRow& fast = summary.rows[1];
    ASSERT_EQ(circuit.cell.backend, xbar::BackendKind::kCircuit);
    ASSERT_EQ(fast.cell.backend, xbar::BackendKind::kFast);
    EXPECT_TRUE(circuit.complete() && fast.complete());
    // Shared per-cell seeds make the gap pure surrogate error; on the tiny
    // 48-image test split one image is ≈2.1 pp, so allow two flips.
    EXPECT_NEAR(fast.acc_mean, circuit.acc_mean, 4.2);
    EXPECT_NEAR(fast.nf_mean, circuit.nf_mean,
                0.25 * circuit.nf_mean + 1e-3);

    // Backend lands in the manifest lines and the aggregate CSV column.
    const auto manifest = load_manifest(summary.manifest_path);
    ASSERT_EQ(manifest.size(), 4u);
    int fast_cells = 0;
    for (const auto& [id, r] : manifest) {
        EXPECT_TRUE(r.backend == "circuit" || r.backend == "fast") << id;
        if (r.backend == "fast") ++fast_cells;
    }
    EXPECT_EQ(fast_cells, 2);
    const std::string csv = slurp(summary.csv_path);
    EXPECT_NE(csv.find(",backend,"), std::string::npos);
    EXPECT_NE(csv.find("fast"), std::string::npos);
}

TEST(SweepRunner, CellBudgetCountsWarnsAndOptionallyAborts) {
    SweepOptions opts;
    opts.csv_name = "budget.csv";
    opts.manifest_name = "budget.jsonl";
    opts.cell_budget_ms = 1e-3;  // everything overruns
    const SweepSummary summary = run(opts);
    EXPECT_EQ(summary.cells_over_budget, summary.cells_executed);

    opts.manifest_name = "budget_abort.jsonl";
    opts.csv_name = "budget_abort.csv";
    opts.cell_budget_abort = true;
    SweepRunner aborting(ctx(), tiny_spec(), opts);
    EXPECT_THROW(aborting.run(), std::exception);

    // The abort happens only after every dispatched cell is recorded: a
    // budget-failed sweep resumes with nothing lost.
    opts.cell_budget_abort = false;
    opts.cell_budget_ms = 0.0;
    opts.resume = true;
    SweepRunner resumed(ctx(), tiny_spec(), opts);
    const SweepSummary after = resumed.run();
    EXPECT_EQ(after.cells_resumed, after.cells_total);
    EXPECT_EQ(after.cells_executed, 0);
    EXPECT_EQ(after.cells_over_budget, 0);
}

TEST(SweepRunner, DryRunReportListsGridWithoutExecuting) {
    SweepSpec spec = tiny_spec();
    spec.backends = {xbar::BackendKind::kCircuit, xbar::BackendKind::kFast};
    const std::string report = dry_run_report(ctx(), spec);
    EXPECT_NE(report.find("cells: 8 (4 groups x 2 repeats)"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("models to prepare: 2"), std::string::npos) << report;
    EXPECT_NE(report.find("backends = circuit,fast"), std::string::npos)
        << report;
    EXPECT_NE(report.find("prune = unpruned,cf:0.8"), std::string::npos)
        << report;
}

TEST(SweepRunner, ConcurrentPreparedReturnsOneModelInstance) {
    const core::ModelSpec spec =
        ctx().spec("vgg11", 10, prune::Method::kNone, 0.0);
    std::vector<core::PreparedModel*> seen(8, nullptr);
    util::parallel_for(0, seen.size(), [&](std::size_t i) {
        seen[i] = &ctx().prepared(spec);
    });
    for (const auto* model : seen) EXPECT_EQ(model, seen[0]);
}

}  // namespace
}  // namespace xs::sweep
