// Pipe message framing for the sweep supervisor (sweep/wire.h): round
// trips, partial-frame reassembly through the nonblocking reader, EOF and
// corrupt-stream handling, the kMetrics telemetry frame, and the deal
// payload codec.
#include "sweep/wire.h"
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace xs::sweep::wire {
namespace {

struct Pipe {
    int fds[2] = {-1, -1};
    Pipe() { EXPECT_EQ(::pipe(fds), 0); }
    ~Pipe() {
        close_read();
        close_write();
    }
    int r() const { return fds[0]; }
    int w() const { return fds[1]; }
    void close_read() {
        if (fds[0] >= 0) ::close(fds[0]);
        fds[0] = -1;
    }
    void close_write() {
        if (fds[1] >= 0) ::close(fds[1]);
        fds[1] = -1;
    }
    void nonblocking_read() { ::fcntl(fds[0], F_SETFL, O_NONBLOCK); }
};

TEST(SweepWire, BlockingRoundTripPreservesTypeAndPayload) {
    Pipe p;
    ASSERT_TRUE(write_message(p.w(), MsgType::kAck, "{\"cell\":\"a/r0\"}"));
    ASSERT_TRUE(write_message(p.w(), MsgType::kHello, ""));
    Message m;
    ASSERT_TRUE(read_message(p.r(), m));
    EXPECT_EQ(m.type, MsgType::kAck);
    EXPECT_EQ(m.payload, "{\"cell\":\"a/r0\"}");
    ASSERT_TRUE(read_message(p.r(), m));
    EXPECT_EQ(m.type, MsgType::kHello);
    EXPECT_TRUE(m.payload.empty());
    // EOF after the writer closes.
    p.close_write();
    EXPECT_FALSE(read_message(p.r(), m));
}

TEST(SweepWire, ReaderReassemblesFramesFromPartialWrites) {
    Pipe p;
    p.nonblocking_read();
    // One frame dribbled in byte by byte: the reader must never yield a
    // partial message.
    std::string frame;
    {
        Pipe scratch;
        ASSERT_TRUE(write_message(scratch.w(), MsgType::kDeal, "17 2"));
        char buf[64];
        const ssize_t n = ::read(scratch.r(), buf, sizeof(buf));
        ASSERT_GT(n, 0);
        frame.assign(buf, static_cast<std::size_t>(n));
    }
    MessageReader reader(p.r());
    Message m;
    for (std::size_t i = 0; i < frame.size(); ++i) {
        ASSERT_EQ(::write(p.w(), frame.data() + i, 1), 1);
        reader.fill();
        if (i + 1 < frame.size()) {
            EXPECT_FALSE(reader.pop(m)) << "partial frame yielded at byte " << i;
        }
    }
    ASSERT_TRUE(reader.pop(m));
    EXPECT_EQ(m.type, MsgType::kDeal);
    EXPECT_EQ(m.payload, "17 2");
    EXPECT_FALSE(reader.finished());
}

TEST(SweepWire, BufferedFramesSurviveEof) {
    Pipe p;
    p.nonblocking_read();
    ASSERT_TRUE(write_message(p.w(), MsgType::kAck, "one"));
    ASSERT_TRUE(write_message(p.w(), MsgType::kAck, "two"));
    p.close_write();  // worker died right after writing

    MessageReader reader(p.r());
    reader.fill();
    EXPECT_TRUE(reader.finished());  // EOF observed…
    Message m;
    ASSERT_TRUE(reader.pop(m));  // …but buffered frames still pop
    EXPECT_EQ(m.payload, "one");
    ASSERT_TRUE(reader.pop(m));
    EXPECT_EQ(m.payload, "two");
    EXPECT_FALSE(reader.pop(m));
}

TEST(SweepWire, OversizedFrameIsCorruptNotAllocated) {
    Pipe p;
    p.nonblocking_read();
    // A length prefix beyond kMaxPayload marks the stream corrupt.
    const std::uint32_t huge = kMaxPayload + 1;
    unsigned char hdr[5] = {
        static_cast<unsigned char>(huge & 0xff),
        static_cast<unsigned char>((huge >> 8) & 0xff),
        static_cast<unsigned char>((huge >> 16) & 0xff),
        static_cast<unsigned char>((huge >> 24) & 0xff),
        static_cast<unsigned char>(MsgType::kAck)};
    ASSERT_EQ(::write(p.w(), hdr, sizeof(hdr)), static_cast<ssize_t>(sizeof(hdr)));
    MessageReader reader(p.r());
    reader.fill();
    Message m;
    EXPECT_FALSE(reader.pop(m));     // corrupt length: never allocated
    EXPECT_TRUE(reader.finished());  // and the stream is marked dead
}

// The shutdown telemetry handshake end to end at the frame level: a real
// metrics snapshot serialized, framed as kMetrics, popped by the
// coordinator-side reader, and parsed back to an identical snapshot.
TEST(SweepWire, MetricsFrameRoundTripsSnapshotJson) {
    util::metrics::reset();
    const util::metrics::Counter c =
        util::metrics::counter("test.wire.cells");
    const util::metrics::Histogram h =
        util::metrics::histogram("test.wire.hist.ns");
    c.add(7);
    h.record(300);
    const util::metrics::Snapshot sent = util::metrics::snapshot();

    Pipe p;
    p.nonblocking_read();
    ASSERT_TRUE(write_message(p.w(), MsgType::kMetrics,
                              util::metrics::to_json(sent)));
    p.close_write();

    MessageReader reader(p.r());
    reader.fill();
    Message m;
    ASSERT_TRUE(reader.pop(m));
    EXPECT_EQ(m.type, MsgType::kMetrics);
    util::metrics::Snapshot received;
    ASSERT_TRUE(util::metrics::from_json(m.payload, received));
    EXPECT_TRUE(received == sent);
    EXPECT_EQ(received.counters.at("test.wire.cells"), 7u);
}

// A worker killed mid-send leaves a truncated frame in the pipe: the reader
// must reject it (no partial message popped) at every cut point, and a
// truncated kMetrics payload that *does* arrive whole-framed but cut short
// must be rejected by the JSON parser — the two layers that keep a torn
// telemetry handshake from corrupting the merged snapshot.
TEST(SweepWire, TruncatedMetricsFrameIsRejected) {
    util::metrics::reset();
    util::metrics::counter("test.wire.trunc").add(3);
    const std::string json = util::metrics::to_json(util::metrics::snapshot());

    // Capture the full frame bytes.
    std::string frame;
    {
        Pipe scratch;
        ASSERT_TRUE(write_message(scratch.w(), MsgType::kMetrics, json));
        std::string buf(json.size() + 16, '\0');
        const ssize_t n = ::read(scratch.r(), buf.data(), buf.size());
        ASSERT_GT(n, 0);
        frame.assign(buf.data(), static_cast<std::size_t>(n));
    }
    ASSERT_EQ(frame.size(), json.size() + 5);  // 4-byte length + 1-byte type

    for (const std::size_t cut : {std::size_t{1}, std::size_t{3},
                                  std::size_t{4}, frame.size() / 2,
                                  frame.size() - 1}) {
        Pipe p;
        p.nonblocking_read();
        ASSERT_EQ(::write(p.w(), frame.data(), cut),
                  static_cast<ssize_t>(cut));
        p.close_write();  // the worker died mid-write
        MessageReader reader(p.r());
        while (reader.fill()) {
        }
        Message m;
        EXPECT_FALSE(reader.pop(m)) << "cut=" << cut;
        EXPECT_TRUE(reader.finished());
    }
}

TEST(SweepWire, DealCodecRoundTripsAndRejectsGarbage) {
    std::int64_t index = -1, attempt = -1;
    ASSERT_TRUE(decode_deal(encode_deal(42, 3), index, attempt));
    EXPECT_EQ(index, 42);
    EXPECT_EQ(attempt, 3);
    ASSERT_TRUE(decode_deal(encode_deal(0, 0), index, attempt));
    EXPECT_EQ(index, 0);
    EXPECT_EQ(attempt, 0);
    EXPECT_FALSE(decode_deal("", index, attempt));
    EXPECT_FALSE(decode_deal("nope", index, attempt));
}

TEST(SweepWire, WriteToClosedPipeReturnsFalse) {
    Pipe p;
    p.close_read();
    // SIGPIPE must not kill the test: the supervisor ignores it and treats
    // the failed write as a dead worker.
    ::signal(SIGPIPE, SIG_IGN);
    EXPECT_FALSE(write_message(p.w(), MsgType::kDeal, "1 0"));
}

}  // namespace
}  // namespace xs::sweep::wire
