// Finite-difference gradient checks for every trainable layer. Each check
// builds a scalar loss L = Σ y·G (fixed random G), compares the analytic
// dL/dθ from backward() against central differences.
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers_basic.h"
#include "nn/linear.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::nn {
namespace {

using tensor::Tensor;

// Scalar loss: L(y) = Σ_i y_i · g_i.
double loss_of(const Tensor& y, const Tensor& g) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
        acc += static_cast<double>(y[i]) * g[i];
    return acc;
}

// Check dL/dx and dL/dparams of `layer` at input x under training mode.
void grad_check(Layer& layer, Tensor x, double tol = 2e-2) {
    util::Rng rng(99);
    Tensor y = layer.forward(x, true);
    Tensor g(y.shape());
    tensor::fill_normal(g, rng, 0.0f, 1.0f);

    for (Param* p : layer.params()) p->zero_grad();
    const Tensor dx = layer.backward(g);

    const float eps = 1e-3f;

    // Input gradient.
    for (std::int64_t i = 0; i < std::min<std::int64_t>(x.numel(), 40); ++i) {
        Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double lp = loss_of(layer.forward(xp, true), g);
        const double lm = loss_of(layer.forward(xm, true), g);
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
            << "input grad mismatch at " << i;
    }

    // Parameter gradients. (Re-run forward at the original x so cached state
    // matches; perturb one parameter entry at a time.)
    for (Param* p : layer.params()) {
        for (std::int64_t i = 0; i < std::min<std::int64_t>(p->value.numel(), 30);
             ++i) {
            const float saved = p->value[i];
            p->value[i] = saved + eps;
            const double lp = loss_of(layer.forward(x, true), g);
            p->value[i] = saved - eps;
            const double lm = loss_of(layer.forward(x, true), g);
            p->value[i] = saved;
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(p->grad[i], numeric,
                        tol * std::max(1.0, std::fabs(numeric)))
                << "param '" << p->name << "' grad mismatch at " << i;
        }
    }
}

TEST(GradCheck, Conv2dWithBias) {
    util::Rng rng(1);
    Conv2d conv(2, 3, 3, 1, 1, rng, true);
    Tensor x({2, 2, 4, 4});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(conv, x);
}

TEST(GradCheck, Conv2dNoBiasStride2) {
    util::Rng rng(2);
    Conv2d conv(1, 2, 3, 2, 1, rng, false);
    Tensor x({1, 1, 6, 6});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(conv, x);
}

TEST(GradCheck, Conv2d1x1) {
    util::Rng rng(3);
    Conv2d conv(3, 2, 1, 1, 0, rng, true);
    Tensor x({2, 3, 3, 3});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(conv, x);
}

TEST(GradCheck, Linear) {
    util::Rng rng(4);
    Linear fc(6, 4, rng);
    Tensor x({3, 6});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(fc, x);
}

TEST(GradCheck, LinearNoBias) {
    util::Rng rng(5);
    Linear fc(5, 2, rng, false);
    Tensor x({2, 5});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(fc, x);
}

TEST(GradCheck, ReLU) {
    util::Rng rng(6);
    ReLU relu;
    Tensor x({3, 7});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    // Keep entries away from the kink where finite differences break.
    for (std::int64_t i = 0; i < x.numel(); ++i)
        if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
    grad_check(relu, x);
}

TEST(GradCheck, MaxPool) {
    util::Rng rng(7);
    MaxPool2d pool(2);
    Tensor x({1, 2, 4, 4});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(pool, x);
}

TEST(GradCheck, AvgPool) {
    util::Rng rng(8);
    AvgPool2d pool(2);
    Tensor x({2, 1, 4, 4});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    grad_check(pool, x);
}

TEST(GradCheck, BatchNorm) {
    util::Rng rng(9);
    BatchNorm2d bn(2);
    // Non-trivial gamma/beta so their gradients are exercised meaningfully.
    bn.gamma().value[0] = 1.3f;
    bn.gamma().value[1] = 0.8f;
    bn.beta().value[0] = -0.2f;
    bn.beta().value[1] = 0.4f;
    Tensor x({4, 2, 3, 3});
    tensor::fill_normal(x, rng, 0.5f, 1.5f);
    grad_check(bn, x, 4e-2);
}

}  // namespace
}  // namespace xs::nn
