// Fault-injection plan grammar and attempt gating (util/faultinject.h).
#include "util/faultinject.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xs::util::fault {
namespace {

// Every test restores the no-plan state so the seam stays inert for the
// rest of the suite (the plan is process-global).
struct PlanGuard {
    ~PlanGuard() { install_plan(""); }
};

TEST(FaultInject, DisabledByDefaultAndAfterClearing) {
    PlanGuard guard;
    install_plan("");
    EXPECT_FALSE(enabled());
    EXPECT_EQ(at("cell", 0), Action::kNone);
    EXPECT_EQ(at("record", 123), Action::kNone);
}

TEST(FaultInject, ParsesActionsSitesAndIndexes) {
    PlanGuard guard;
    install_plan("crash@cell:7, hang@cell:3,fail@cell:2,truncate-manifest@record:1");
    EXPECT_TRUE(enabled());
    EXPECT_EQ(at("cell", 7), Action::kCrash);
    EXPECT_EQ(at("cell", 3), Action::kHang);
    EXPECT_EQ(at("cell", 2), Action::kFail);
    EXPECT_EQ(at("record", 1), Action::kTruncate);
    // Non-matching site/index combinations stay clean.
    EXPECT_EQ(at("cell", 1), Action::kNone);
    EXPECT_EQ(at("record", 7), Action::kNone);
    EXPECT_EQ(at("cell", 1, /*attempt=*/5), Action::kNone);
}

TEST(FaultInject, BareTruncateMeansFirstRecord) {
    PlanGuard guard;
    install_plan("truncate-manifest");
    EXPECT_EQ(at("record", 0), Action::kTruncate);
    EXPECT_EQ(at("record", 1), Action::kNone);
}

TEST(FaultInject, FiresOnFirstAttemptOnlyUnlessStarred) {
    PlanGuard guard;
    install_plan("crash@cell:4,fail@cell:9*");
    // Default: attempt 0 only — the recover-after-crash path retries clean.
    EXPECT_EQ(at("cell", 4, 0), Action::kCrash);
    EXPECT_EQ(at("cell", 4, 1), Action::kNone);
    EXPECT_EQ(at("cell", 4, 2), Action::kNone);
    // '*': every attempt — a poison cell that exhausts the retry budget.
    EXPECT_EQ(at("cell", 9, 0), Action::kFail);
    EXPECT_EQ(at("cell", 9, 1), Action::kFail);
    EXPECT_EQ(at("cell", 9, 5), Action::kFail);
}

TEST(FaultInject, ExecuteFailThrowsWithSiteInMessage) {
    PlanGuard guard;
    try {
        execute(Action::kFail, "cell", 2);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("fail@cell:2"), std::string::npos);
    }
    // kNone and kTruncate are no-ops at the seam (the torn write is the
    // manifest writer's job).
    execute(Action::kNone, "cell", 0);
    execute(Action::kTruncate, "record", 0);
}

TEST(FaultInject, MalformedPlansThrowLoudly) {
    PlanGuard guard;
    EXPECT_THROW(install_plan("explode@cell:1"), std::exception);
    EXPECT_THROW(install_plan("crash@cell"), std::exception);     // no index
    EXPECT_THROW(install_plan("crash@cell:x"), std::exception);   // bad index
    EXPECT_THROW(install_plan("crash@cell:"), std::exception);    // empty index
}

}  // namespace
}  // namespace xs::util::fault
