// End-to-end integration: train → prune → map → evaluate on tiny
// configurations, exercising the full Fig. 2 pipeline the way the benchmark
// harness does (just smaller and faster).
#include "core/evaluator.h"
#include "core/wct.h"
#include "core/workspace.h"
#include "data/synthetic.h"
#include "map/compression.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "prune/stats.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace xs::core {
namespace {

data::SyntheticSpec easy_data() {
    data::SyntheticSpec spec = data::cifar10_like(5);
    spec.class_jitter = 0.4f;  // easy so tiny models learn fast
    spec.pixel_noise = 0.4f;
    return spec;
}

nn::VggConfig tiny_vgg() {
    nn::VggConfig vc;
    vc.width = 0.0625;
    return vc;
}

struct Trained {
    nn::Sequential model;
    prune::MaskSet masks;
    double software = 0.0;
};

Trained train_tiny(prune::Method method, double sparsity) {
    const auto tt = data::generate_split(easy_data(), 320, 160);
    util::Rng rng(7);
    Trained t{nn::build_vgg(tiny_vgg(), rng), {}, 0.0};
    if (method != prune::Method::kNone) {
        prune::PruneConfig pc;
        pc.method = method;
        pc.sparsity = sparsity;
        pc.segment_size = 16;
        t.masks = prune::prune_at_init(t.model, pc);
    }
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 32;
    nn::train(t.model, tt.train, nullptr, tc,
              t.masks.empty() ? nn::StepHook{} : t.masks.hook());
    t.software = nn::evaluate(t.model, tt.test);
    return t;
}

TEST(Integration, TrainedTinyModelBeatsChance) {
    const Trained t = train_tiny(prune::Method::kNone, 0.0);
    EXPECT_GT(t.software, 40.0);  // 10 classes, chance = 10 %
}

TEST(Integration, PrunedTrainingKeepsStructuredSparsity) {
    Trained t = train_tiny(prune::Method::kChannelFilter, 0.5);
    EXPECT_GT(t.software, 35.0);
    bool first = true;
    std::int64_t total_zero_cols = 0;
    for (const auto& s : prune::layer_sparsity(t.model)) {
        if (!first && s.layer != "fc1") total_zero_cols += s.zero_cols;
        first = false;
    }
    EXPECT_GT(total_zero_cols, 0);
}

TEST(Integration, NonIdealAccuracyBelowSoftware) {
    Trained t = train_tiny(prune::Method::kNone, 0.0);
    const auto tt = data::generate_split(easy_data(), 32, 160);
    EvalConfig config;
    config.xbar.size = 64;
    const EvalResult r = evaluate_on_crossbars(t.model, tt.test, config);
    EXPECT_LT(r.accuracy, t.software + 1e-9);
    EXPECT_GT(r.nf_mean, 0.0);
}

TEST(Integration, RearrangementDoesNotBreakInference) {
    Trained t = train_tiny(prune::Method::kChannelFilter, 0.5);
    const auto tt = data::generate_split(easy_data(), 32, 160);
    EvalConfig config;
    config.xbar.size = 32;
    config.method = prune::Method::kChannelFilter;
    const EvalResult plain = evaluate_on_crossbars(t.model, tt.test, config);
    config.rearrange = true;
    const EvalResult with_r = evaluate_on_crossbars(t.model, tt.test, config);
    // R must keep accuracy in a sane band (it is a mapping-time identity in
    // the ideal limit) — typically it helps; never collapse to chance.
    EXPECT_GT(with_r.accuracy, 0.5 * plain.accuracy - 5.0);
}

TEST(Integration, WctKeepsSoftwareAccuracyAndClipsWeights) {
    Trained t = train_tiny(prune::Method::kChannelFilter, 0.5);
    const auto tt = data::generate_split(easy_data(), 320, 160);

    WctConfig wc;
    wc.percentile = 0.85;
    wc.finetune.epochs = 2;
    const WctResult wr = apply_wct(t.model, tt.train, &tt.test, t.masks, wc);
    const double after = nn::evaluate(t.model, tt.test);
    EXPECT_GT(after, t.software - 15.0);  // near-iso on the easy task

    // Weights respect the cut and w_ref ≥ w_cut.
    for (const auto& [layer, cut] : wr.w_cut) {
        EXPECT_GT(cut, 0.0);
        EXPECT_GE(wr.w_ref.at(layer), cut);
    }
}

TEST(Integration, CompressionRateAboveOneForCf) {
    Trained t = train_tiny(prune::Method::kChannelFilter, 0.5);
    const auto budget =
        map::count_crossbars(t.model, prune::Method::kChannelFilter, 16);
    EXPECT_GT(budget.compression_rate(), 1.2);
}

TEST(Integration, WorkspaceCachesModels) {
    const std::string cache =
        (std::filesystem::temp_directory_path() / "xs_ws_cache").string();
    std::filesystem::remove_all(cache);

    ModelSpec spec;
    spec.vgg = tiny_vgg();
    spec.data = easy_data();
    spec.train_count = 160;
    spec.test_count = 80;
    spec.train.epochs = 1;
    spec.train.batch_size = 32;
    const auto tt = data::generate_split(spec.data, 160, 80);

    const PreparedModel first = prepare_model(spec, tt.train, tt.test, cache, false);
    EXPECT_FALSE(first.from_cache);
    const PreparedModel second = prepare_model(spec, tt.train, tt.test, cache, false);
    EXPECT_TRUE(second.from_cache);
    EXPECT_NEAR(first.software_accuracy, second.software_accuracy, 1e-9);
    std::filesystem::remove_all(cache);
}

TEST(Integration, SpecKeyDistinguishesVariants) {
    ModelSpec a;
    a.prune.method = prune::Method::kNone;
    ModelSpec b = a;
    b.prune.method = prune::Method::kChannelFilter;
    b.prune.sparsity = 0.8;
    ModelSpec c = b;
    c.wct = true;
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(b.key(), c.key());
}

}  // namespace
}  // namespace xs::core
