// Telemetry registry (util/metrics.h, DESIGN.md §10): log2 bucketing, merge
// determinism at any thread count, JSON round-trips, and the zero-allocation
// steady-state guarantee of the *instrumented* circuit and fast crossbar
// pipelines — the global operator new/delete pair below counts every heap
// allocation in this test binary.
#include "util/metrics.h"
#include "util/trace.h"
#include "xbar/backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

namespace {

std::atomic<long> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xs::util::metrics {
namespace {

TEST(Metrics, CounterAccumulatesAndSnapshotSees) {
    reset();
    const Counter c = counter("test.basic.ctr");
    c.add();
    c.add(41);
    const Snapshot snap = snapshot();
    EXPECT_EQ(snap.counters.at("test.basic.ctr"), 42u);
}

TEST(Metrics, SameNameSameSlot) {
    reset();
    const Counter a = counter("test.alias.ctr");
    const Counter b = counter("test.alias.ctr");
    a.add(1);
    b.add(2);
    EXPECT_EQ(snapshot().counters.at("test.alias.ctr"), 3u);
}

TEST(Metrics, KindConflictThrows) {
    counter("test.kind.ctr");
    EXPECT_THROW(histogram("test.kind.ctr"), std::runtime_error);
}

TEST(Metrics, HistogramLog2Buckets) {
    reset();
    const Histogram h = histogram("test.bucket.hist.ns");
    h.record(0);     // bucket 0
    h.record(1);     // [1,2) -> bucket 1
    h.record(2);     // [2,4) -> bucket 2
    h.record(3);     // [2,4) -> bucket 2
    h.record(1000);  // [512,1024) -> bucket 10
    const HistogramSnapshot hs =
        snapshot().histograms.at("test.bucket.hist.ns");
    EXPECT_EQ(hs.count, 5u);
    EXPECT_EQ(hs.sum, 1006u);
    // Trimmed to the last nonzero bucket (index 10).
    const std::vector<std::uint64_t> expect = {1, 1, 2, 0, 0, 0,
                                               0, 0, 0, 0, 1};
    EXPECT_EQ(hs.buckets, expect);
}

TEST(Metrics, HistogramExtremeValuesClampToLastBucket) {
    reset();
    const Histogram h = histogram("test.clamp.hist.ns");
    h.record(~std::uint64_t{0});  // bit width 64 clamps to bucket 63
    const HistogramSnapshot hs = snapshot().histograms.at("test.clamp.hist.ns");
    EXPECT_EQ(hs.count, 1u);
    ASSERT_EQ(hs.buckets.size(), 64u);
    EXPECT_EQ(hs.buckets.back(), 1u);
}

// The same logical workload, partitioned over 1, 4, and 7 threads, must
// produce bit-identical snapshots: shard merge order cannot matter.
TEST(Metrics, MergeDeterministicAcrossThreadCounts) {
    constexpr int kItems = 1000;
    const auto run_partitioned = [](int nthreads) {
        reset();
        const Counter c = counter("test.merge.ctr");
        const Histogram h = histogram("test.merge.hist.ns");
        std::vector<std::thread> threads;
        for (int t = 0; t < nthreads; ++t)
            threads.emplace_back([&, t] {
                for (int i = t; i < kItems; i += nthreads) {
                    c.add(static_cast<std::uint64_t>(i));
                    h.record(static_cast<std::uint64_t>((i * 37) % 4096));
                }
            });
        for (std::thread& t : threads) t.join();
        return snapshot();  // exited threads' shards are retired but counted
    };

    const Snapshot one = run_partitioned(1);
    const Snapshot four = run_partitioned(4);
    const Snapshot seven = run_partitioned(7);
    EXPECT_EQ(one.counters.at("test.merge.ctr"),
              static_cast<std::uint64_t>(kItems * (kItems - 1) / 2));
    EXPECT_TRUE(one == four);
    EXPECT_TRUE(one == seven);
}

TEST(Metrics, MergeAddsCountersAndBucketwiseHistograms) {
    Snapshot a;
    a.counters["x"] = 2;
    a.histograms["h"] = {3, 30, {1, 1, 1}};
    Snapshot b;
    b.counters["x"] = 5;
    b.counters["y"] = 1;
    b.histograms["h"] = {2, 1024, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2}};
    merge(a, b);
    EXPECT_EQ(a.counters.at("x"), 7u);
    EXPECT_EQ(a.counters.at("y"), 1u);
    EXPECT_EQ(a.histograms.at("h").count, 5u);
    EXPECT_EQ(a.histograms.at("h").sum, 1054u);
    const std::vector<std::uint64_t> expect = {1, 1, 1, 0, 0, 0,
                                               0, 0, 0, 0, 0, 2};
    EXPECT_EQ(a.histograms.at("h").buckets, expect);
}

TEST(Metrics, JsonRoundTrip) {
    reset();
    counter("test.json.ctr");  // zero-valued metrics survive the trip too
    const Histogram h = histogram("test.json.hist.ns");
    const Counter c = counter("test.json.ctr2");
    c.add(123456789);
    h.record(0);
    h.record(77);
    const Snapshot before = snapshot();
    const std::string json = to_json(before);
    Snapshot after;
    ASSERT_TRUE(from_json(json, after));
    EXPECT_TRUE(before == after);
    EXPECT_EQ(json, to_json(after));  // canonical both ways
}

TEST(Metrics, FromJsonRejectsMalformedAndLeavesOutputUntouched) {
    const std::string good = to_json(Snapshot{});
    Snapshot out;
    out.counters["sentinel"] = 9;
    EXPECT_FALSE(from_json("", out));
    EXPECT_FALSE(from_json("{", out));
    EXPECT_FALSE(from_json("[]", out));
    EXPECT_FALSE(from_json("{\"counters\":{}}", out));  // histograms missing
    EXPECT_FALSE(from_json(good + "x", out));           // trailing garbage
    // A truncated frame — exactly what a torn wire payload looks like.
    const std::string full = to_json([] {
        Snapshot s;
        s.counters["a"] = 1;
        s.histograms["h"] = {1, 2, {0, 1}};
        return s;
    }());
    for (std::size_t cut = 1; cut < full.size(); ++cut)
        EXPECT_FALSE(from_json(full.substr(0, cut), out)) << "cut=" << cut;
    EXPECT_EQ(out.counters.at("sentinel"), 9u);
    EXPECT_TRUE(from_json(full, out));
    EXPECT_EQ(out.counters.at("a"), 1u);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandles) {
    const Counter c = counter("test.reset.ctr");
    c.add(5);
    reset();
    EXPECT_EQ(snapshot().counters.at("test.reset.ctr"), 0u);
    c.add(2);  // handle registered before reset still lands
    EXPECT_EQ(snapshot().counters.at("test.reset.ctr"), 2u);
}

// The instrumented hot paths (XS_COUNT / XS_TIMER_NS inside the circuit
// solve and the fast backend's calibration-fold) must stay allocation-free
// in steady state, with telemetry compiled in and a disarmed trace Span on
// the path. Warm-up registers the call sites' handles, this thread's shard,
// and the fast backend's calibration bucket; after that, nothing.
TEST(Metrics, InstrumentedBackendsSteadyStateAllocateNothing) {
    xbar::CrossbarConfig config;
    config.size = 32;
    tensor::Tensor g({32, 32});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(
            config.device.g_min() +
            (config.device.g_max() - config.device.g_min()) *
                static_cast<double>(i % 97) / 96.0);

    const xbar::CircuitBackend circuit(config, /*warm_start=*/true);
    const xbar::FastBackend fast(config);
    xbar::DegradeWorkspace ws_circuit, ws_fast;
    xbar::TileDegradeResult out;
    circuit.degrade(g, ws_circuit, out);  // warm-up provisions everything
    fast.degrade(g, ws_fast, out);

    const long before = g_alloc_count.load();
    for (int rep = 0; rep < 10; ++rep) {
        circuit.degrade(g, ws_circuit, out);
        fast.degrade(g, ws_fast, out);
    }
    EXPECT_EQ(g_alloc_count.load(), before);

    // And the raw primitives themselves.
    const Counter c = counter("test.alloc.ctr");
    const Histogram h = histogram("test.alloc.hist.ns");
    c.add(1);
    h.record(1);
    const long before_prim = g_alloc_count.load();
    for (int i = 0; i < 1000; ++i) {
        c.add(1);
        h.record(static_cast<std::uint64_t>(i));
        XS_TRACE_SPAN("disarmed");  // one relaxed load, no buffer touch
    }
    EXPECT_EQ(g_alloc_count.load(), before_prim);
}

}  // namespace
}  // namespace xs::util::metrics
