#include "tensor/ops.h"
#include "xbar/degrade.h"
#include "xbar/mapper.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::xbar {
namespace {

using tensor::Tensor;

TEST(Mapper, LinearMapping) {
    DeviceConfig dev;
    const ConductanceMapper mapper(dev, 2.0);
    EXPECT_NEAR(mapper.to_conductance(0.0), dev.g_min(), 1e-12);
    EXPECT_NEAR(mapper.to_conductance(2.0), dev.g_max(), 1e-12);
    EXPECT_NEAR(mapper.to_conductance(1.0), (dev.g_min() + dev.g_max()) / 2.0,
                1e-12);
}

TEST(Mapper, ClampsAboveReference) {
    DeviceConfig dev;
    const ConductanceMapper mapper(dev, 1.0);
    EXPECT_NEAR(mapper.to_conductance(5.0), dev.g_max(), 1e-12);
}

TEST(Mapper, InvalidReferenceThrows) {
    DeviceConfig dev;
    EXPECT_THROW(ConductanceMapper(dev, 0.0), std::invalid_argument);
    EXPECT_THROW(ConductanceMapper(dev, -1.0), std::invalid_argument);
}

TEST(Mapper, DifferentialRoundTripIsExact) {
    DeviceConfig dev;
    util::Rng rng(1);
    Tensor w({6, 6});
    tensor::fill_normal(w, rng, 0.0f, 0.3f);
    const double w_ref = tensor::max_abs(w);
    const ConductanceMapper mapper(dev, w_ref);

    Tensor gp, gn;
    mapper.to_differential(w, gp, gn);
    const Tensor back = mapper.from_differential(gp, gn);
    EXPECT_TRUE(tensor::allclose(back, w, 1e-6f, 1e-5f))
        << "max diff " << tensor::max_abs_diff(back, w);
}

TEST(Mapper, DifferentialUsesOneSidePerSign) {
    DeviceConfig dev;
    const ConductanceMapper mapper(dev, 1.0);
    Tensor w({1, 2});
    w[0] = 0.5f;
    w[1] = -0.5f;
    Tensor gp, gn;
    mapper.to_differential(w, gp, gn);
    EXPECT_GT(gp[0], static_cast<float>(dev.g_min()));
    EXPECT_FLOAT_EQ(gn[0], static_cast<float>(dev.g_min()));
    EXPECT_FLOAT_EQ(gp[1], static_cast<float>(dev.g_min()));
    EXPECT_GT(gn[1], static_cast<float>(dev.g_min()));
}

TEST(Variation, ZeroSigmaIsNoop) {
    DeviceConfig dev;
    dev.sigma_variation = 0.0;
    util::Rng rng(2);
    Tensor g({8, 8}, 10e-6f);
    const Tensor before = g;
    apply_variation(g, dev, rng);
    EXPECT_TRUE(tensor::allclose(g, before, 0.0f, 0.0f));
}

TEST(Variation, StatisticsMatchSigma) {
    DeviceConfig dev;
    dev.sigma_variation = 0.1;
    util::Rng rng(3);
    Tensor g({100, 100}, 20e-6f);
    apply_variation(g, dev, rng);
    double sum = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        const double rel = g[i] / 20e-6 - 1.0;
        sum += rel;
        sq += rel * rel;
    }
    const double n = static_cast<double>(g.numel());
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(std::sqrt(sq / n), 0.1, 0.01);
}

TEST(Variation, ClampsExtremes) {
    DeviceConfig dev;
    dev.sigma_variation = 5.0;  // absurd sigma to force clamping
    util::Rng rng(4);
    Tensor g({50, 50}, 30e-6f);
    apply_variation(g, dev, rng);
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        EXPECT_GE(g[i], static_cast<float>(dev.g_min() * 0.5));
        EXPECT_LE(g[i], static_cast<float>(dev.g_max() * 2.0));
    }
}

TEST(Degrade, EffectiveConductanceReduced) {
    CrossbarConfig config;
    config.size = 16;
    util::Rng rng(5);
    Tensor g({16, 16});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(
            rng.uniform(config.device.g_min(), config.device.g_max()));
    const TileDegradeResult r = degrade_tile(g, config);
    for (std::int64_t i = 0; i < g.numel(); ++i) {
        EXPECT_LE(r.g_eff[i], g[i]);
        EXPECT_GT(r.g_eff[i], 0.0f);
    }
    EXPECT_GT(r.nf, 0.0);
    EXPECT_LT(r.nf, 1.0);
}

TEST(Degrade, ExactAtCalibrationInput) {
    // Σ_i G′_ij · v_nom must equal the true non-ideal column current.
    CrossbarConfig config;
    config.size = 8;
    util::Rng rng(6);
    Tensor g({8, 8});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(
            rng.uniform(config.device.g_min(), config.device.g_max()));
    const TileDegradeResult r = degrade_tile(g, config);

    const CircuitSolver solver(config);
    const std::vector<double> v(8, config.parasitics.v_nom);
    const auto sol = solver.solve(g, v);
    for (std::int64_t j = 0; j < 8; ++j) {
        double folded = 0.0;
        for (std::int64_t i = 0; i < 8; ++i)
            folded += static_cast<double>(r.g_eff.at(i, j)) * config.parasitics.v_nom;
        EXPECT_NEAR(folded, sol.currents[static_cast<std::size_t>(j)],
                    std::fabs(sol.currents[static_cast<std::size_t>(j)]) * 1e-4);
    }
}

TEST(Degrade, NfGrowsWithCrossbarSize) {
    for (const double level : {10e-6, 30e-6}) {
        double prev = 0.0;
        for (const std::int64_t size : {8, 16, 32, 64}) {
            CrossbarConfig config;
            config.size = size;
            Tensor g({size, size}, static_cast<float>(level));
            const double nf = non_ideality_factor(g, config);
            EXPECT_GT(nf, prev) << "size " << size << " level " << level;
            prev = nf;
        }
    }
}

TEST(Degrade, NfGrowsWithConductance) {
    CrossbarConfig config;
    config.size = 32;
    double prev = -1.0;
    for (const double level : {5e-6, 15e-6, 30e-6, 50e-6}) {
        Tensor g({32, 32}, static_cast<float>(level));
        const double nf = non_ideality_factor(g, config);
        EXPECT_GT(nf, prev);
        prev = nf;
    }
}

TEST(Degrade, IdealParasiticsGiveZeroNf) {
    CrossbarConfig config;
    config.size = 16;
    config.parasitics = ParasiticsConfig::ideal();
    config.parasitics.v_nom = 0.25;
    Tensor g({16, 16}, 30e-6f);
    EXPECT_NEAR(non_ideality_factor(g, config), 0.0, 1e-6);
}

TEST(Degrade, HighConductanceNeighboursHurtLowColumn) {
    // The coupling that makes column rearrangement work: a low-G column
    // embedded among high-G columns degrades more than among low-G columns.
    CrossbarConfig config;
    config.size = 16;
    const float lo = static_cast<float>(config.device.g_min());
    const float hi = static_cast<float>(config.device.g_max());

    Tensor g_mixed({16, 16}, hi);
    for (std::int64_t i = 0; i < 16; ++i) g_mixed.at(i, 0) = lo;
    Tensor g_uniform({16, 16}, lo);

    const CircuitSolver solver(config);
    const std::vector<double> v(16, 0.25);
    const auto mixed = solver.solve(g_mixed, v);
    const auto uniform = solver.solve(g_uniform, v);
    const auto ideal = solver.ideal_currents(g_uniform, v);

    const double nf_mixed = (ideal[0] - mixed.currents[0]) / ideal[0];
    const double nf_uniform = (ideal[0] - uniform.currents[0]) / ideal[0];
    EXPECT_GT(nf_mixed, nf_uniform * 1.5);
}

}  // namespace
}  // namespace xs::xbar
