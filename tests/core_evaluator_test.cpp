#include "core/evaluator.h"
#include "core/wct.h"
#include "map/matrix_view.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::core {
namespace {

using tensor::Tensor;

EvalConfig ideal_config(std::int64_t size) {
    EvalConfig c;
    c.xbar.size = size;
    c.include_parasitics = false;
    c.include_variation = false;
    return c;
}

TEST(Degrade, IdealPipelineIsNearIdentity) {
    util::Rng rng(1);
    Tensor m({40, 24});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);
    DegradeStats stats;
    util::Rng vr(2);
    const Tensor out = degrade_mac_matrix(m, ideal_config(16), 1.6, vr, stats);
    EXPECT_TRUE(tensor::allclose(out, m, 2e-3f, 1e-2f))
        << "max diff " << tensor::max_abs_diff(out, m);
    EXPECT_EQ(stats.tiles, 3 * 2 + 0);  // ceil(40/16)=3 by ceil(24/16)=2
}

TEST(Degrade, ParasiticsShrinkWeights) {
    util::Rng rng(3);
    Tensor m({32, 32});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);
    EvalConfig config;
    config.xbar.size = 32;
    config.include_variation = false;
    DegradeStats stats;
    util::Rng vr(4);
    const Tensor out = degrade_mac_matrix(m, config, 1.6, vr, stats);
    // The aggregate weight magnitude must fall (IR drop only removes drive).
    double in_mag = 0.0, out_mag = 0.0;
    for (std::int64_t i = 0; i < m.numel(); ++i) {
        in_mag += std::fabs(m[i]);
        out_mag += std::fabs(out[i]);
    }
    EXPECT_LT(out_mag, in_mag);
    EXPECT_GT(out_mag, 0.3 * in_mag);  // but not annihilate them
    EXPECT_GT(stats.nf_mean(), 0.0);
    EXPECT_LT(stats.nf_mean(), 1.0);
}

TEST(Degrade, CompactionPreservesStructuralZeros) {
    // C/F semantics: pruned (all-zero) rows/columns are eliminated before
    // mapping, so they come back as exact zeros even with non-idealities.
    util::Rng rng(5);
    Tensor m({24, 16});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);
    for (std::int64_t j = 0; j < 16; ++j) m.at(5, j) = m.at(17, j) = 0.0f;
    for (std::int64_t i = 0; i < 24; ++i) m.at(i, 3) = m.at(i, 12) = 0.0f;

    EvalConfig config;
    config.xbar.size = 8;
    config.method = prune::Method::kChannelFilter;
    config.include_variation = true;
    DegradeStats stats;
    util::Rng vr(6);
    const Tensor out = degrade_mac_matrix(m, config, 1.6, vr, stats);
    for (std::int64_t j = 0; j < 16; ++j) {
        EXPECT_EQ(out.at(5, j), 0.0f);
        EXPECT_EQ(out.at(17, j), 0.0f);
    }
    for (std::int64_t i = 0; i < 24; ++i) {
        EXPECT_EQ(out.at(i, 3), 0.0f);
        EXPECT_EQ(out.at(i, 12), 0.0f);
    }
}

TEST(Degrade, XcsZeroSegmentsStayZero) {
    util::Rng rng(7);
    Tensor m({16, 8});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);
    for (std::int64_t r = 0; r < 8; ++r) m.at(r, 2) = 0.0f;  // segment (block0, col2)

    EvalConfig config;
    config.xbar.size = 8;
    config.method = prune::Method::kXbarColumn;
    DegradeStats stats;
    util::Rng vr(8);
    const Tensor out = degrade_mac_matrix(m, config, 1.6, vr, stats);
    for (std::int64_t r = 0; r < 8; ++r) EXPECT_EQ(out.at(r, 2), 0.0f);
}

TEST(Degrade, VariationIsDeterministicPerSeed) {
    util::Rng rng(9);
    Tensor m({16, 16});
    tensor::fill_normal(m, rng, 0.0f, 0.4f);
    EvalConfig config;
    config.xbar.size = 16;

    DegradeStats s1, s2;
    util::Rng r1(42), r2(42);
    const Tensor a = degrade_mac_matrix(m, config, 1.6, r1, s1);
    const Tensor b = degrade_mac_matrix(m, config, 1.6, r2, s2);
    EXPECT_TRUE(tensor::allclose(a, b, 0.0f, 0.0f));
}

TEST(Evaluator, ModelWeightsRestoredAfterEvaluation) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(10);
    nn::Sequential model = nn::build_vgg(vc, rng);

    // Snapshot weights.
    std::vector<Tensor> before;
    for (nn::Layer* l : map::mappable_layers(model))
        before.push_back(map::extract_matrix(*l));

    nn::Dataset test;
    test.num_classes = 10;
    test.images = Tensor({8, 3, 32, 32});
    tensor::fill_normal(test.images, rng, 0.0f, 1.0f);
    test.labels.assign(8, 0);

    EvalConfig config;
    config.xbar.size = 32;
    evaluate_on_crossbars(model, test, config);

    const auto layers = map::mappable_layers(model);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Tensor after = map::extract_matrix(*layers[i]);
        EXPECT_TRUE(tensor::allclose(after, before[i], 0.0f, 0.0f))
            << layers[i]->name();
    }
}

TEST(Evaluator, IdealCrossbarsMatchSoftwareAccuracy) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    // The weight→conductance→weight roundtrip is float-lossy (~1e-3
    // relative), so equality needs argmax margins above that noise; this
    // seed's random logits keep every image's margin comfortable.
    util::Rng rng(12);
    nn::Sequential model = nn::build_vgg(vc, rng);

    nn::Dataset test;
    test.num_classes = 10;
    test.images = Tensor({16, 3, 32, 32});
    tensor::fill_normal(test.images, rng, 0.0f, 1.0f);
    test.labels.resize(16);
    for (std::size_t i = 0; i < 16; ++i)
        test.labels[i] = static_cast<std::int64_t>(i % 10);

    const double software = nn::evaluate(model, test);
    const EvalResult r = evaluate_on_crossbars(model, test, ideal_config(32));
    EXPECT_NEAR(r.accuracy, software, 1e-9);
    EXPECT_NEAR(r.nf_mean, 0.0, 1e-12);
}

TEST(Evaluator, ReportsLayerStats) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(12);
    nn::Sequential model = nn::build_vgg(vc, rng);
    const EvalResult r = measure_nf(model, [&] {
        EvalConfig c;
        c.xbar.size = 16;
        return c;
    }());
    EXPECT_EQ(r.layers.size(), 9u);  // 8 convs + fc
    EXPECT_GT(r.total_tiles, 0);
    EXPECT_GT(r.nf_mean, 0.0);
    for (const auto& l : r.layers) {
        EXPECT_GT(l.tiles, 0);
        EXPECT_GT(l.w_ref, 0.0);
    }
}

// Solver-failure accounting contract (evaluator.h): total_tiles counts ONE
// repeat's mapping while unconverged_tiles sums solver failures over every
// Monte-Carlo repeat, so the invariant is
//   0 ≤ unconverged_tiles ≤ total_tiles × repeats
// — NOT unconverged_tiles ≤ total_tiles. Both evaluation paths must report
// the same per-repeat tile count and respect the bound; the evaluator
// itself aborts loudly (check_failure_accounting) when the bound breaks.
TEST(Evaluator, SolverFailuresCountAgainstTilesTimesRepeats) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(17);
    nn::Sequential model = nn::build_vgg(vc, rng);

    nn::Dataset test;
    test.num_classes = 10;
    test.images = Tensor({8, 3, 32, 32});
    tensor::fill_normal(test.images, rng, 0.0f, 1.0f);
    test.labels.assign(8, 0);

    EvalConfig config;
    config.xbar.size = 32;
    config.repeats = 3;

    const std::int64_t single_repeat_tiles = [&] {
        EvalConfig one = config;
        one.repeats = 1;
        return evaluate_on_crossbars(model, test, one).total_tiles;
    }();
    ASSERT_GT(single_repeat_tiles, 0);

    for (const bool batched : {true, false}) {
        config.repeat_batch = batched;
        const EvalResult r = evaluate_on_crossbars(model, test, config);
        // total_tiles stays the per-repeat mapping count...
        EXPECT_EQ(r.total_tiles, single_repeat_tiles) << "batched=" << batched;
        // ...while the failure budget scales with the repeat count.
        EXPECT_GE(r.unconverged_tiles, 0) << "batched=" << batched;
        EXPECT_LE(r.unconverged_tiles, r.total_tiles * config.repeats)
            << "batched=" << batched;
    }
}

TEST(Evaluator, NfGrowsWithCrossbarSize) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(13);
    nn::Sequential model = nn::build_vgg(vc, rng);
    double prev = 0.0;
    for (const std::int64_t size : {16, 32, 64}) {
        EvalConfig c;
        c.xbar.size = size;
        c.include_variation = false;
        const EvalResult r = measure_nf(model, c);
        EXPECT_GT(r.nf_mean, prev);
        prev = r.nf_mean;
    }
}

TEST(Wct, ClipBoundsWeights) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(14);
    nn::Sequential model = nn::build_vgg(vc, rng);

    std::map<std::string, double> cuts;
    for (nn::Layer* l : map::mappable_layers(model)) cuts[l->name()] = 0.05;
    clip_weights(model, cuts);
    for (nn::Layer* l : map::mappable_layers(model)) {
        const Tensor m = map::extract_matrix(*l);
        EXPECT_LE(tensor::max_abs(m), 0.05f + 1e-7f) << l->name();
    }
}

TEST(Wct, PercentileOfKnownDistribution) {
    Tensor w({100});
    for (std::int64_t i = 0; i < 100; ++i)
        w[i] = static_cast<float>(i + 1) * (i % 2 ? 1.0f : -1.0f);
    EXPECT_NEAR(nonzero_abs_percentile(w, 0.5), 51.0, 1.0);
    EXPECT_NEAR(nonzero_abs_percentile(w, 1.0), 100.0, 0.0);
}

TEST(Wct, PercentileIgnoresZeros) {
    Tensor w({6});
    w[0] = 0.0f;
    w[1] = 0.0f;
    w[2] = 1.0f;
    w[3] = 2.0f;
    w[4] = 3.0f;
    w[5] = 4.0f;
    EXPECT_NEAR(nonzero_abs_percentile(w, 0.5), 3.0, 1e-6);
}

TEST(Wct, ClipPreservesSign) {
    nn::VggConfig vc;
    vc.width = 0.0625;
    util::Rng rng(15);
    nn::Sequential model = nn::build_vgg(vc, rng);
    auto* conv = dynamic_cast<nn::Conv2d*>(model.find("conv1"));
    conv->weight().value[0] = -10.0f;
    conv->weight().value[1] = 10.0f;
    std::map<std::string, double> cuts{{"conv1", 0.5}};
    clip_weights(model, cuts);
    EXPECT_FLOAT_EQ(conv->weight().value[0], -0.5f);
    EXPECT_FLOAT_EQ(conv->weight().value[1], 0.5f);
}

}  // namespace
}  // namespace xs::core
