// Tests for the evaluator extensions: write quantization, stuck-at faults,
// column compensation, and the unstructured pruning baseline.
#include "core/evaluator.h"
#include "map/compression.h"
#include "nn/conv2d.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "prune/stats.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::core {
namespace {

using tensor::Tensor;

Tensor random_matrix(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
    util::Rng rng(seed);
    Tensor m({rows, cols});
    tensor::fill_normal(m, rng, 0.0f, 0.1f);
    return m;
}

TEST(Compensation, RestoresColumnSumsExactly) {
    // The digital per-column gain restores each column's calibration-point
    // current, so in weight space every column sum must match the original.
    const Tensor m = random_matrix(32, 32, 1);
    EvalConfig config;
    config.xbar.size = 32;
    config.include_variation = false;
    config.compensate_columns = true;

    DegradeStats stats;
    util::Rng rng(2);
    const Tensor out = degrade_mac_matrix(m, config, 0.4, rng, stats);
    for (std::int64_t j = 0; j < 32; ++j) {
        double before = 0.0, after = 0.0;
        for (std::int64_t i = 0; i < 32; ++i) {
            before += m.at(i, j);
            after += out.at(i, j);
        }
        EXPECT_NEAR(after, before, std::fabs(before) * 1e-3 + 1e-5) << "col " << j;
    }
}

TEST(Compensation, ReducesWeightError) {
    const Tensor m = random_matrix(64, 64, 3);
    EvalConfig config;
    config.xbar.size = 64;
    config.include_variation = false;

    DegradeStats s1, s2;
    util::Rng r1(4), r2(4);
    const Tensor plain = degrade_mac_matrix(m, config, 0.4, r1, s1);
    config.compensate_columns = true;
    const Tensor comp = degrade_mac_matrix(m, config, 0.4, r2, s2);

    double err_plain = 0.0, err_comp = 0.0;
    for (std::int64_t i = 0; i < m.numel(); ++i) {
        err_plain += std::fabs(plain[i] - m[i]);
        err_comp += std::fabs(comp[i] - m[i]);
    }
    EXPECT_LT(err_comp, err_plain);
}

TEST(Quantization, CoarseLevelsIncreaseWeightError) {
    const Tensor m = random_matrix(32, 32, 5);
    EvalConfig config;
    config.xbar.size = 32;
    config.include_parasitics = false;
    config.include_variation = false;

    auto error_with_levels = [&](std::int64_t levels) {
        EvalConfig c = config;
        c.conductance_levels = levels;
        DegradeStats stats;
        util::Rng rng(6);
        const Tensor out = degrade_mac_matrix(m, c, 0.4, rng, stats);
        double err = 0.0;
        for (std::int64_t i = 0; i < m.numel(); ++i)
            err += std::fabs(out[i] - m[i]);
        return err;
    };
    const double err4 = error_with_levels(16);    // 4-bit
    const double err8 = error_with_levels(256);   // 8-bit
    EXPECT_GT(err4, err8);
    EXPECT_GT(err4, 0.0);
}

TEST(Quantization, ManyLevelsApproachContinuous) {
    const Tensor m = random_matrix(16, 16, 7);
    EvalConfig config;
    config.xbar.size = 16;
    config.include_parasitics = false;
    config.include_variation = false;
    config.conductance_levels = 1 << 14;

    DegradeStats stats;
    util::Rng rng(8);
    const Tensor out = degrade_mac_matrix(m, config, 0.4, rng, stats);
    EXPECT_TRUE(tensor::allclose(out, m, 1e-3f, 1e-2f));
}

TEST(Faults, DegradeWithFaultsPerturbsWeights) {
    const Tensor m = random_matrix(32, 32, 9);
    EvalConfig config;
    config.xbar.size = 32;
    config.include_parasitics = false;
    config.include_variation = false;
    config.faults.p_stuck_max = 0.05;

    DegradeStats stats;
    util::Rng rng(10);
    const Tensor out = degrade_mac_matrix(m, config, 0.4, rng, stats);
    // Stuck-at-G_MAX devices create large positive/negative weight errors.
    EXPECT_GT(tensor::max_abs_diff(out, m), 0.1f);
}

TEST(Unstructured, ElementSparsityMatches) {
    nn::VggConfig vc;
    vc.width = 0.125;
    util::Rng rng(11);
    nn::Sequential model = nn::build_vgg(vc, rng);
    prune::PruneConfig pc;
    pc.method = prune::Method::kUnstructured;
    pc.sparsity = 0.7;
    prune::prune_at_init(model, pc);

    const auto stats = prune::layer_sparsity(model);
    // Spared stem + untouched fc1 bracket the pruned conv layers.
    for (std::size_t i = 1; i + 1 < stats.size(); ++i)
        EXPECT_NEAR(stats[i].element_sparsity(), 0.7, 0.02) << stats[i].layer;
}

TEST(Unstructured, SavesNoCrossbars) {
    nn::VggConfig vc;
    vc.width = 0.125;
    util::Rng rng(12);
    nn::Sequential model = nn::build_vgg(vc, rng);
    prune::PruneConfig pc;
    pc.method = prune::Method::kUnstructured;
    pc.sparsity = 0.7;
    prune::prune_at_init(model, pc);

    const auto budget =
        map::count_crossbars(model, prune::Method::kUnstructured, 32);
    EXPECT_EQ(budget.total, budget.dense_total);
    EXPECT_DOUBLE_EQ(budget.compression_rate(), 1.0);
}

TEST(Unstructured, MethodNameRoundTrip) {
    EXPECT_EQ(prune::method_from_name("unstructured"),
              prune::Method::kUnstructured);
    EXPECT_EQ(prune::method_name(prune::Method::kUnstructured), "unstructured");
}

TEST(Unstructured, KeepsHighestMagnitudes) {
    nn::VggConfig vc;
    vc.width = 0.125;
    util::Rng rng(13);
    nn::Sequential model = nn::build_vgg(vc, rng);
    // Record pre-prune weights of conv2.
    auto* conv2 = dynamic_cast<nn::Conv2d*>(model.find("conv2"));
    ASSERT_NE(conv2, nullptr);
    const Tensor before = conv2->weight().value;

    prune::PruneConfig pc;
    pc.method = prune::Method::kUnstructured;
    pc.sparsity = 0.5;
    prune::prune_at_init(model, pc);
    const Tensor& after = conv2->weight().value;

    // Every surviving weight must be at least as large in magnitude as every
    // pruned weight (global per-layer threshold semantics).
    float min_kept = 1e30f, max_pruned = 0.0f;
    for (std::int64_t i = 0; i < after.numel(); ++i) {
        if (after[i] != 0.0f)
            min_kept = std::min(min_kept, std::fabs(before[i]));
        else
            max_pruned = std::max(max_pruned, std::fabs(before[i]));
    }
    EXPECT_GE(min_kept, max_pruned);
}

}  // namespace
}  // namespace xs::core
