// Bit-identity of the lane-batched solver/degrade path against the scalar
// one. The batched kernels mirror the scalar arithmetic expression-for-
// expression; these tests pin that every lane's voltages, currents, sweep
// counts, NF, and warm-chain behaviour are byte-identical to solving each
// repeat alone — the property the repeat-batched evaluator relies on.
#include "util/rng.h"
#include "xbar/config.h"
#include "xbar/degrade.h"
#include "xbar/solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

namespace xs::xbar {
namespace {

using tensor::Tensor;

CrossbarConfig config_of(std::int64_t size, double rd, double rwr, double rwc,
                         double rs) {
    CrossbarConfig c;
    c.size = size;
    c.parasitics.r_driver = rd;
    c.parasitics.r_wire_row = rwr;
    c.parasitics.r_wire_col = rwc;
    c.parasitics.r_sense = rs;
    return c;
}

Tensor random_g(std::int64_t n, std::uint64_t seed, const DeviceConfig& dev) {
    util::Rng rng(seed);
    Tensor g({n, n});
    for (std::int64_t i = 0; i < g.numel(); ++i)
        g[i] = static_cast<float>(rng.uniform(dev.g_min(), dev.g_max()));
    return g;
}

// Compare doubles as bits: the contract is bit-identity, not closeness.
void expect_bits_eq(double a, double b, const char* what, int lane) {
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ba, bb) << what << " mismatch in lane " << lane << ": " << a
                      << " vs " << b;
}

TEST(BatchedSolver, ColdSolveMatchesScalarBitExact) {
    const CrossbarConfig c = config_of(16, 100, 2, 2, 100);
    const CircuitSolver solver(c);
    const std::vector<double> v(16, c.parasitics.v_nom);

    for (int lanes = 1; lanes <= kMaxSolveLanes; ++lanes) {
        std::vector<Tensor> gs;
        std::vector<const Tensor*> gp;
        for (int r = 0; r < lanes; ++r)
            gs.push_back(random_g(16, 100 + static_cast<std::uint64_t>(r), c.device));
        for (auto& g : gs) gp.push_back(&g);

        BatchedSolveWorkspace bws;
        solver.solve_batched(gp.data(), lanes, v.data(), bws);

        for (int r = 0; r < lanes; ++r) {
            SolveWorkspace sws;
            solver.solve(gs[static_cast<std::size_t>(r)], v.data(), sws);
            ASSERT_EQ(bws.iterations[r], sws.iterations) << "lane " << r;
            EXPECT_EQ(bws.converged[r] != 0, sws.converged);
            expect_bits_eq(bws.max_delta[r], sws.max_delta, "max_delta", r);
            for (std::int64_t k = 0; k < 16 * 16; ++k) {
                expect_bits_eq(bws.vr[static_cast<std::size_t>(k * lanes + r)],
                               sws.vr[static_cast<std::size_t>(k)], "vr", r);
                expect_bits_eq(bws.vc[static_cast<std::size_t>(k * lanes + r)],
                               sws.vc[static_cast<std::size_t>(k)], "vc", r);
            }
            for (std::int64_t j = 0; j < 16; ++j)
                expect_bits_eq(
                    bws.currents[static_cast<std::size_t>(j * lanes + r)],
                    sws.currents[static_cast<std::size_t>(j)], "currents", r);
        }
    }
}

TEST(BatchedSolver, WarmChainMatchesScalarChainPerLane) {
    // Each lane solves a sequence of statistically-similar tiles with warm
    // starts; lane r's chain must match an independent scalar chain over the
    // same tile sequence, even though the lanes converge at different sweeps.
    const CrossbarConfig c = config_of(16, 100, 2, 2, 100);
    const CircuitSolver solver(c);
    const std::vector<double> v(16, c.parasitics.v_nom);
    const int lanes = 5;
    const int steps = 4;

    std::vector<std::vector<Tensor>> chain(static_cast<std::size_t>(lanes));
    for (int r = 0; r < lanes; ++r)
        for (int s = 0; s < steps; ++s)
            chain[static_cast<std::size_t>(r)].push_back(random_g(
                16, 1000 + static_cast<std::uint64_t>(r * steps + s), c.device));

    BatchedSolveWorkspace bws;
    std::vector<SolveWorkspace> sws(static_cast<std::size_t>(lanes));
    for (int s = 0; s < steps; ++s) {
        std::vector<const Tensor*> gp;
        for (int r = 0; r < lanes; ++r)
            gp.push_back(&chain[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)]);
        solver.solve_batched(gp.data(), lanes, v.data(), bws);
        for (int r = 0; r < lanes; ++r) {
            solver.solve(*gp[static_cast<std::size_t>(r)], v.data(),
                         sws[static_cast<std::size_t>(r)]);
            ASSERT_EQ(bws.iterations[r], sws[static_cast<std::size_t>(r)].iterations)
                << "step " << s << " lane " << r;
            for (std::int64_t k = 0; k < 16 * 16; ++k)
                expect_bits_eq(
                    bws.vc[static_cast<std::size_t>(k * lanes + r)],
                    sws[static_cast<std::size_t>(r)].vc[static_cast<std::size_t>(k)],
                    "vc", r);
            for (std::int64_t j = 0; j < 16; ++j)
                expect_bits_eq(
                    bws.currents[static_cast<std::size_t>(j * lanes + r)],
                    sws[static_cast<std::size_t>(r)].currents[static_cast<std::size_t>(j)],
                    "currents", r);
        }
    }
}

TEST(BatchedSolver, LanesConvergeIndependently) {
    // A lane with a much harder field (heavier parasitics make coupling
    // stronger) must not perturb an easier lane's result.
    const CrossbarConfig c = config_of(16, 500, 8, 8, 500);
    const CircuitSolver solver(c);
    const std::vector<double> v(16, c.parasitics.v_nom);

    Tensor easy({16, 16}, static_cast<float>(c.device.g_min()));
    Tensor hard = random_g(16, 7, c.device);
    for (std::int64_t i = 0; i < hard.numel(); ++i)
        hard[i] = static_cast<float>(c.device.g_max() * 2.0);

    const Tensor* gp[2] = {&easy, &hard};
    BatchedSolveWorkspace bws;
    solver.solve_batched(gp, 2, v.data(), bws);

    SolveWorkspace se, sh;
    solver.solve(easy, v.data(), se);
    solver.solve(hard, v.data(), sh);
    EXPECT_NE(se.iterations, sh.iterations);  // genuinely different lanes
    ASSERT_EQ(bws.iterations[0], se.iterations);
    ASSERT_EQ(bws.iterations[1], sh.iterations);
    for (std::int64_t j = 0; j < 16; ++j) {
        expect_bits_eq(bws.currents[static_cast<std::size_t>(j * 2)],
                       se.currents[static_cast<std::size_t>(j)], "easy", 0);
        expect_bits_eq(bws.currents[static_cast<std::size_t>(j * 2 + 1)],
                       sh.currents[static_cast<std::size_t>(j)], "hard", 1);
    }
}

TEST(BatchedDegrade, MatchesScalarDegradeIncludingWarmRetry) {
    const CrossbarConfig c = config_of(16, 100, 2, 2, 100);
    const CircuitSolver solver(c);
    const int lanes = 3;
    const int steps = 3;

    BatchedDegradeWorkspace bws;
    std::vector<DegradeWorkspace> sws(static_cast<std::size_t>(lanes));
    std::vector<TileDegradeResult> bout(static_cast<std::size_t>(lanes));
    std::vector<TileDegradeResult> sout(static_cast<std::size_t>(lanes));

    for (int s = 0; s < steps; ++s) {
        std::vector<Tensor> gs;
        for (int r = 0; r < lanes; ++r)
            gs.push_back(random_g(
                16, 5000 + static_cast<std::uint64_t>(s * lanes + r), c.device));
        std::vector<const Tensor*> gp;
        std::vector<TileDegradeResult*> op;
        for (int r = 0; r < lanes; ++r) {
            gp.push_back(&gs[static_cast<std::size_t>(r)]);
            op.push_back(&bout[static_cast<std::size_t>(r)]);
        }
        degrade_tile_batched(gp.data(), lanes, solver, bws, op.data());
        for (int r = 0; r < lanes; ++r) {
            degrade_tile(gs[static_cast<std::size_t>(r)], solver,
                         sws[static_cast<std::size_t>(r)],
                         sout[static_cast<std::size_t>(r)]);
            const auto& b = bout[static_cast<std::size_t>(r)];
            const auto& e = sout[static_cast<std::size_t>(r)];
            ASSERT_EQ(b.sweeps, e.sweeps) << "step " << s << " lane " << r;
            EXPECT_EQ(b.converged, e.converged);
            expect_bits_eq(b.nf, e.nf, "nf", r);
            ASSERT_EQ(b.g_eff.numel(), e.g_eff.numel());
            for (std::int64_t k = 0; k < b.g_eff.numel(); ++k)
                EXPECT_EQ(b.g_eff[k], e.g_eff[k])
                    << "g_eff[" << k << "] lane " << r;
        }
    }
}

TEST(BatchedDegrade, ColdRetryOnFailedWarmSolveIsDeterministic) {
    // Force unconverged solves with a tiny sweep budget: a warm-started
    // failure must retry cold and match the scalar retry bit-for-bit.
    const CrossbarConfig c = config_of(16, 100, 2, 2, 100);
    CircuitSolver solver(c);
    solver.set_max_sweeps(2);

    BatchedDegradeWorkspace bws;
    DegradeWorkspace sws;
    TileDegradeResult bout, sout;
    TileDegradeResult* op[1] = {&bout};
    for (int s = 0; s < 3; ++s) {
        const Tensor g = random_g(16, 42 + static_cast<std::uint64_t>(s), c.device);
        const Tensor* gp[1] = {&g};
        degrade_tile_batched(gp, 1, solver, bws, op);
        degrade_tile(g, solver, sws, sout);
        EXPECT_FALSE(bout.converged);
        ASSERT_EQ(bout.sweeps, sout.sweeps) << "step " << s;
        expect_bits_eq(bout.nf, sout.nf, "nf", 0);
        for (std::int64_t k = 0; k < bout.g_eff.numel(); ++k)
            EXPECT_EQ(bout.g_eff[k], sout.g_eff[k]) << "g_eff[" << k << "]";
    }
}

}  // namespace
}  // namespace xs::xbar
