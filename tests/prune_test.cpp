#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/trainer.h"
#include "nn/vgg.h"
#include "prune/prune.h"
#include "prune/stats.h"
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xs::prune {
namespace {

using nn::Sequential;
using tensor::Tensor;

nn::VggConfig tiny_vgg() {
    nn::VggConfig config;
    config.width = 0.25;
    config.min_channels = 8;
    return config;
}

TEST(MethodNames, RoundTrip) {
    for (const Method m : {Method::kNone, Method::kChannelFilter,
                           Method::kXbarColumn, Method::kXbarRow})
        EXPECT_EQ(method_from_name(method_name(m)), m);
    EXPECT_THROW(method_from_name("bogus"), std::invalid_argument);
}

TEST(ChannelFilter, FilterCountsMatchSparsity) {
    util::Rng rng(1);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.method = Method::kChannelFilter;
    config.sparsity = 0.75;
    prune_at_init(model, config);

    bool first = true;
    model.for_each([&](nn::Layer& layer) {
        auto* conv = dynamic_cast<nn::Conv2d*>(&layer);
        if (!conv) return;
        // Count non-zero filters (matrix columns).
        std::int64_t nonzero_filters = 0;
        const std::int64_t per_filter =
            conv->in_channels() * conv->kernel() * conv->kernel();
        const float* w = conv->weight().value.data();
        for (std::int64_t f = 0; f < conv->out_channels(); ++f) {
            bool any = false;
            for (std::int64_t j = 0; j < per_filter && !any; ++j)
                any = w[f * per_filter + j] != 0.0f;
            if (any) ++nonzero_filters;
        }
        if (first) {
            EXPECT_EQ(nonzero_filters, conv->out_channels());  // spared stem
            first = false;
        } else {
            const auto expected = std::max<std::int64_t>(
                1, std::llround(0.25 * static_cast<double>(conv->out_channels())));
            EXPECT_EQ(nonzero_filters, expected) << layer.name();
        }
    });
}

TEST(ChannelFilter, NextLayerChannelsZeroed) {
    util::Rng rng(2);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 0.5;
    prune_at_init(model, config);

    // For each pruned filter f of convK, conv(K+1) input channel f is zero.
    auto* conv2 = dynamic_cast<nn::Conv2d*>(model.find("conv2"));
    auto* conv3 = dynamic_cast<nn::Conv2d*>(model.find("conv3"));
    ASSERT_NE(conv2, nullptr);
    ASSERT_NE(conv3, nullptr);
    const std::int64_t per_filter2 =
        conv2->in_channels() * conv2->kernel() * conv2->kernel();
    for (std::int64_t f = 0; f < conv2->out_channels(); ++f) {
        bool filter_zero = true;
        for (std::int64_t j = 0; j < per_filter2 && filter_zero; ++j)
            filter_zero = conv2->weight().value[f * per_filter2 + j] == 0.0f;
        if (!filter_zero) continue;
        // Channel f of conv3 must be entirely zero across all filters.
        for (std::int64_t g = 0; g < conv3->out_channels(); ++g)
            for (std::int64_t a = 0; a < 3; ++a)
                for (std::int64_t b = 0; b < 3; ++b)
                    EXPECT_EQ(conv3->weight().value.at(g, f, a, b), 0.0f);
    }
}

TEST(ChannelFilter, BatchNormOfPrunedChannelsZeroed) {
    util::Rng rng(3);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 0.5;
    prune_at_init(model, config);

    auto* conv2 = dynamic_cast<nn::Conv2d*>(model.find("conv2"));
    auto* bn2 = dynamic_cast<nn::BatchNorm2d*>(model.find("bn2"));
    ASSERT_NE(bn2, nullptr);
    const std::int64_t per_filter =
        conv2->in_channels() * conv2->kernel() * conv2->kernel();
    for (std::int64_t f = 0; f < conv2->out_channels(); ++f) {
        bool filter_zero = true;
        for (std::int64_t j = 0; j < per_filter && filter_zero; ++j)
            filter_zero = conv2->weight().value[f * per_filter + j] == 0.0f;
        if (filter_zero) {
            EXPECT_EQ(bn2->gamma().value[f], 0.0f);
            EXPECT_EQ(bn2->beta().value[f], 0.0f);
        } else {
            EXPECT_NE(bn2->gamma().value[f], 0.0f);
        }
    }
}

TEST(ChannelFilter, ClassifierInputsPruned) {
    util::Rng rng(4);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 0.5;
    prune_at_init(model, config);

    auto* fc = dynamic_cast<nn::Linear*>(model.find("fc1"));
    ASSERT_NE(fc, nullptr);
    std::int64_t zero_cols = 0;
    for (std::int64_t j = 0; j < fc->in_features(); ++j) {
        bool all_zero = true;
        for (std::int64_t o = 0; o < fc->out_features() && all_zero; ++o)
            all_zero = fc->weight().value.at(o, j) == 0.0f;
        if (all_zero) ++zero_cols;
    }
    EXPECT_GT(zero_cols, 0);
}

TEST(ChannelFilter, PrunedChannelsProduceZeroActivations) {
    // The end-to-end guarantee: a pruned channel's activation map is zero.
    util::Rng rng(5);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 0.5;
    prune_at_init(model, config);

    Tensor x({1, 3, 32, 32});
    tensor::fill_normal(x, rng, 0.0f, 1.0f);
    // Forward through conv1..bn2 only: run layers until bn2 inclusive.
    Tensor h = x;
    for (std::size_t i = 0; i < model.size(); ++i) {
        h = model.layer(i).forward(h, false);
        if (model.layer(i).name() == "bn2") break;
    }
    auto* conv2 = dynamic_cast<nn::Conv2d*>(model.find("conv2"));
    const std::int64_t per_filter =
        conv2->in_channels() * conv2->kernel() * conv2->kernel();
    const std::int64_t hw = h.dim(2) * h.dim(3);
    for (std::int64_t f = 0; f < conv2->out_channels(); ++f) {
        bool filter_zero = true;
        for (std::int64_t j = 0; j < per_filter && filter_zero; ++j)
            filter_zero = conv2->weight().value[f * per_filter + j] == 0.0f;
        if (!filter_zero) continue;
        for (std::int64_t q = 0; q < hw; ++q)
            EXPECT_EQ(h[f * hw + q], 0.0f);
    }
}

TEST(Xcs, SegmentSparsityMatches) {
    util::Rng rng(6);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.method = Method::kXbarColumn;
    config.sparsity = 0.6;
    config.segment_size = 16;
    const MaskSet masks = prune_at_init(model, config);

    auto* conv3 = dynamic_cast<nn::Conv2d*>(model.find("conv3"));
    const std::int64_t rows =
        conv3->in_channels() * conv3->kernel() * conv3->kernel();
    const std::int64_t cols = conv3->out_channels();
    const std::int64_t blocks = (rows + 15) / 16;
    std::int64_t zero_segments = 0;
    for (std::int64_t c = 0; c < cols; ++c)
        for (std::int64_t b = 0; b < blocks; ++b) {
            bool all_zero = true;
            const std::int64_t r1 = std::min(rows, (b + 1) * 16);
            for (std::int64_t r = b * 16; r < r1 && all_zero; ++r)
                all_zero = conv3->weight().value[c * rows + r] == 0.0f;
            if (all_zero) ++zero_segments;
        }
    const std::int64_t total = blocks * cols;
    const auto expected_kept = std::max<std::int64_t>(
        1, std::llround(0.4 * static_cast<double>(total)));
    EXPECT_EQ(total - zero_segments, expected_kept);
}

TEST(Xrs, RowSegmentsPruned) {
    util::Rng rng(7);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.method = Method::kXbarRow;
    config.sparsity = 0.5;
    config.segment_size = 8;
    prune_at_init(model, config);
    // Element sparsity of conv layers (except spared stem) ≈ 0.5.
    const auto stats = layer_sparsity(model);
    for (std::size_t i = 1; i + 1 < stats.size(); ++i)
        EXPECT_NEAR(stats[i].element_sparsity(), 0.5, 0.1) << stats[i].layer;
}

TEST(MaskSet, HookKeepsMasksDuringTraining) {
    util::Rng rng(8);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 0.5;
    const MaskSet masks = prune_at_init(model, config);
    const double before = model_sparsity(model);

    // One training epoch on random data with the mask hook.
    nn::Dataset data;
    data.num_classes = 10;
    data.images = Tensor({32, 3, 32, 32});
    tensor::fill_normal(data.images, rng, 0.0f, 1.0f);
    data.labels.assign(32, 0);
    for (std::size_t i = 0; i < 32; ++i)
        data.labels[i] = static_cast<std::int64_t>(i % 10);
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 16;
    nn::train(model, data, nullptr, tc, masks.hook());

    EXPECT_NEAR(model_sparsity(model), before, 1e-9);
}

TEST(MaskSet, FromZerosReconstructsMasks) {
    util::Rng rng(9);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 0.5;
    const MaskSet original = prune_at_init(model, config);

    const MaskSet rebuilt = MaskSet::from_zeros(model);
    // Applying the rebuilt masks changes nothing (zeros stay zero) and its
    // sparsity matches the real element sparsity.
    const double sparsity_before = model_sparsity(model);
    rebuilt.apply(model);
    EXPECT_NEAR(model_sparsity(model), sparsity_before, 1e-12);
}

TEST(MaskSet, SparsityAccounting) {
    MaskSet set;
    Tensor m({4}, 1.0f);
    m[0] = 0.0f;
    set.add("x", m);
    EXPECT_NEAR(set.sparsity(), 0.25, 1e-12);
}

TEST(MaskSet, DuplicateAddThrows) {
    MaskSet set;
    set.add("x", Tensor({2}, 1.0f));
    EXPECT_THROW(set.add("x", Tensor({2}, 1.0f)), std::invalid_argument);
}

TEST(PruneConfig, InvalidSparsityThrows) {
    util::Rng rng(10);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    PruneConfig config;
    config.sparsity = 1.0;
    EXPECT_THROW(prune_at_init(model, config), std::invalid_argument);
}

TEST(Stats, UnprunedModelHasNoZeroStructures) {
    util::Rng rng(11);
    Sequential model = nn::build_vgg(tiny_vgg(), rng);
    for (const auto& s : layer_sparsity(model)) {
        EXPECT_EQ(s.zero_cols, 0) << s.layer;
        EXPECT_EQ(s.zero_rows, 0) << s.layer;
        EXPECT_LT(s.element_sparsity(), 0.01) << s.layer;
    }
}

}  // namespace
}  // namespace xs::prune
