#!/usr/bin/env bash
# CI entry point: a Release build+test job, plus a Debug job with Address-
# and UB-sanitizers covering the workspace/parallel code. Run from anywhere.
#
# Usage: ci.sh [release|sanitize|all]   (default: all)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")" && pwd)"
mode="${1:-all}"
jobs="$(nproc)"

run_release() {
  echo "=== Release build + ctest ==="
  cmake -B "$repo_root/build-release" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo_root/build-release" -j"$jobs"
  ctest --test-dir "$repo_root/build-release" --output-on-failure -j"$jobs"
  # Bench smoke: one-ish iteration per benchmark so the bench targets (and
  # the engine/evaluator paths they drive) can't bit-rot unnoticed.
  if [[ -x "$repo_root/build-release/bench_micro" ]]; then
    echo "=== bench smoke (min_time ~1 iteration) ==="
    "$repo_root/build-release/bench_micro" --benchmark_min_time=0.000001
  fi
}

run_sanitize() {
  echo "=== Debug + ASan/UBSan build + ctest ==="
  cmake -B "$repo_root/build-asan" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Debug -DXS_SANITIZE=ON \
    -DXS_BUILD_BENCH=OFF -DXS_BUILD_EXAMPLES=OFF
  cmake --build "$repo_root/build-asan" -j"$jobs"
  # The integration test is minutes-long under sanitizers; everything else
  # runs. It is fully covered by the Release job.
  ctest --test-dir "$repo_root/build-asan" --output-on-failure -j"$jobs" \
    -E core_integration_test
}

case "$mode" in
  release) run_release ;;
  sanitize) run_sanitize ;;
  all) run_release; run_sanitize ;;
  *) echo "usage: $0 [release|sanitize|all]" >&2; exit 2 ;;
esac
echo "CI OK"
