#!/usr/bin/env bash
# CI entry point: a Release build+test job with a bench smoke and a bench
# regression gate, plus a Debug job with Address- and UB-sanitizers over the
# unit-labeled tests. Both jobs compile with -Wall -Wextra -Werror
# (XS_WERROR) and use ccache when available (the GitHub workflow caches its
# directory). Run from anywhere.
#
# Usage: ci.sh [release|sanitize|all]   (default: all)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")" && pwd)"
mode="${1:-all}"
jobs="$(nproc)"

cmake_common=(-DXS_WERROR=ON)
if command -v ccache >/dev/null 2>&1; then
  cmake_common+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_release() {
  echo "=== Release build + ctest ==="
  cmake -B "$repo_root/build-release" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Release "${cmake_common[@]}"
  cmake --build "$repo_root/build-release" -j"$jobs"
  ctest --test-dir "$repo_root/build-release" --output-on-failure -j"$jobs"
  # Bench smoke: one-ish iteration per benchmark so the bench targets (and
  # the engine/evaluator paths they drive) can't bit-rot unnoticed.
  if [[ -x "$repo_root/build-release/bench_micro" ]]; then
    echo "=== bench smoke (min_time ~1 iteration) ==="
    "$repo_root/build-release/bench_micro" --benchmark_min_time=0.000001
    run_bench_gate
  fi
  run_sweep_smoke
  run_service_smoke
}

# Sweep smoke: a dry-run plus one tiny circuit/fast grid through the real
# sweep_runner driver, so the backend axis, the stage pipeline, per-cell
# budgeting, and manifest/CSV plumbing can't bit-rot unnoticed. A second
# run of the same grid with full telemetry armed (detail metrics, a chrome
# trace, a metrics snapshot, the progress heartbeat) must reproduce the
# plain run's CSV byte for byte — observability must never perturb results
# — and its metrics/trace JSONs must pass bench/check_metrics.py. The same
# grid at 4 repeats runs once lane-batched (the default: one compiled-
# instance set and one batched inference pass per grid point) and once with
# --repeat-batch=off (the legacy one-evaluation-per-cell path); the two
# aggregate CSVs must be byte-identical. A further multi-process run with
# an injected worker crash (XS_FAULT) must respawn,
# re-deal, and reproduce the single-process CSV byte for byte — the
# supervisor's core invariant, checked end to end — while still emitting a
# merged, validatable metrics snapshot.
run_sweep_smoke() {
  if [[ ! -x "$repo_root/build-release/sweep_runner" ]]; then
    return 0
  fi
  echo "=== sweep smoke (dry-run + one circuit/fast cell each) ==="
  local smoke_dir="$repo_root/build-release/sweep-smoke"
  rm -rf "$smoke_dir"
  local smoke_flags=(--width=0.0625 --train-count=96 --test-count=48
    --epochs=1 --batch=16 --sizes=16 --sweep-repeats=1
    --backends=circuit,fast --out-dir="$smoke_dir"
    --cache-dir="$smoke_dir/models")
  "$repo_root/build-release/sweep_runner" "${smoke_flags[@]}" --dry-run
  "$repo_root/build-release/sweep_runner" "${smoke_flags[@]}" \
    --cell-budget-ms=120000
  if ! grep -q ',fast,' "$smoke_dir/sweep.csv"; then
    echo "sweep smoke: aggregate CSV is missing the backend=fast row" >&2
    return 1
  fi
  echo "=== telemetry sweep smoke (metrics + trace + heartbeat) ==="
  XS_METRICS=detail "$repo_root/build-release/sweep_runner" \
    "${smoke_flags[@]}" --cell-budget-ms=120000 --progress-sec=1 \
    --metrics-out="$smoke_dir/metrics.json" --trace="$smoke_dir/trace.json" \
    --csv=sweep_telemetry.csv --manifest=sweep_telemetry.jsonl
  if ! cmp "$smoke_dir/sweep.csv" "$smoke_dir/sweep_telemetry.csv"; then
    echo "sweep smoke: telemetry-enabled CSV differs from the plain run" >&2
    return 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 "$repo_root/bench/check_metrics.py" --clean \
      "$smoke_dir/metrics.json" "$smoke_dir/trace.json" \
      "$smoke_dir/sweep_telemetry.jsonl"
  fi
  echo "=== repeat-batch equivalence smoke (batched vs sequential cells) ==="
  # 4 repeats = one full solver-lane group, so the lane-batched group path
  # actually engages (the repeats=1 runs above ride its scalar fallback).
  local rb_flags=("${smoke_flags[@]/--sweep-repeats=1/--sweep-repeats=4}")
  "$repo_root/build-release/sweep_runner" "${rb_flags[@]}" \
    --cell-budget-ms=120000 --csv=sweep_rb_batched.csv \
    --manifest=sweep_rb_batched.jsonl
  "$repo_root/build-release/sweep_runner" "${rb_flags[@]}" \
    --repeat-batch=false --cell-budget-ms=120000 \
    --csv=sweep_rb_sequential.csv --manifest=sweep_rb_sequential.jsonl
  if ! cmp "$smoke_dir/sweep_rb_batched.csv" "$smoke_dir/sweep_rb_sequential.csv"; then
    echo "sweep smoke: batched-repeat CSV differs from the sequential path" >&2
    return 1
  fi
  echo "=== supervised sweep smoke (2 workers, injected crash) ==="
  XS_FAULT="crash@cell:1" "$repo_root/build-release/sweep_runner" \
    "${smoke_flags[@]}" --workers=2 --cell-budget-ms=120000 \
    --csv=sweep_supervised.csv --manifest=sweep_supervised.jsonl \
    --metrics-out="$smoke_dir/metrics_supervised.json"
  if ! cmp "$smoke_dir/sweep.csv" "$smoke_dir/sweep_supervised.csv"; then
    echo "sweep smoke: supervised CSV differs from the single-process run" >&2
    return 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    # No --clean: the injected crash loses that worker's executed-count.
    python3 "$repo_root/bench/check_metrics.py" \
      "$smoke_dir/metrics_supervised.json"
  fi
}

# Multi-host service smoke: the same tiny grid (a few more repeats, so a
# severed agent has a live sweep to rejoin) through sweep_serve with two
# loopback agents, one of them dropping its connection instead of sending
# its first result (XS_FAULT=net-disconnect@net-send-ack:0). The
# coordinator must re-deal the lost cell, dedup any late duplicate ack,
# and produce an aggregate CSV byte-identical to a single-process run of
# the same grid — the service's core invariant (DESIGN.md §11) — while
# its merged per-host metrics snapshot passes bench/check_metrics.py.
run_service_smoke() {
  if [[ ! -x "$repo_root/build-release/sweep_serve" ]]; then
    return 0
  fi
  echo "=== multi-host service smoke (2 loopback agents, injected disconnect) ==="
  local smoke_dir="$repo_root/build-release/sweep-smoke"
  local grid_flags=(--width=0.0625 --train-count=96 --test-count=48
    --epochs=1 --batch=16 --sizes=16 --sweep-repeats=4
    --backends=circuit,fast --out-dir="$smoke_dir"
    --cache-dir="$smoke_dir/models")
  # Single-process reference of the exact grid (models come from the sweep
  # smoke's cache, so this is a few seconds of cells).
  "$repo_root/build-release/sweep_runner" "${grid_flags[@]}" \
    --cell-budget-ms=120000 --csv=service_ref.csv \
    --manifest=service_ref.jsonl
  local port=$(( 20000 + RANDOM % 20000 ))
  "$repo_root/build-release/sweep_serve" "${grid_flags[@]}" --port="$port" \
    --heartbeat-ms=250 --cell-budget-ms=120000 \
    --csv=service.csv --manifest=service.jsonl \
    --metrics-out="$smoke_dir/metrics_service.json" &
  local serve_pid=$!
  XS_FAULT="net-disconnect@net-send-ack:0" \
    "$repo_root/build-release/sweep_runner" "${grid_flags[@]}" \
    --agent="127.0.0.1:$port" --workers=1 --agent-backoff-ms=50 \
    --agent-reconnects=8 &
  local agent0_pid=$!
  "$repo_root/build-release/sweep_runner" "${grid_flags[@]}" \
    --agent="127.0.0.1:$port" --workers=1 --agent-backoff-ms=50 \
    --agent-reconnects=8 &
  local agent1_pid=$!
  wait "$serve_pid"
  wait "$agent1_pid"
  # The severed agent usually rejoins mid-sweep and drains cleanly, but on
  # a loaded machine the sweep can finish inside its reconnect window and
  # it gives up against a closed port — either way the invariants below
  # must hold, so its exit code is informational only.
  if ! wait "$agent0_pid"; then
    echo "(faulted agent exited nonzero: sweep drained during its reconnect)"
  fi
  if ! cmp "$smoke_dir/service_ref.csv" "$smoke_dir/service.csv"; then
    echo "service smoke: multi-host CSV differs from the single-process run" >&2
    return 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    # No --clean: the injected disconnect can strand one agent's counts.
    python3 "$repo_root/bench/check_metrics.py" \
      "$smoke_dir/metrics_service.json"
  fi
}

# Bench regression gate: measured runs (min over 3 repetitions) diffed
# against bench/BENCH_micro.baseline.json; any benchmark more than
# XS_BENCH_TOLERANCE (default 15) percent slower fails the job. A failing
# gate retries with fresh runs and re-gates on the min across all runs —
# transient machine noise clears on retry, a real regression stays slow in
# every run. Refresh the baseline (commit the last BENCH_gate_run*.json as
# bench/BENCH_micro.baseline.json) when a PR intentionally shifts
# performance or the reference machine changes.
run_bench_gate() {
  if ! command -v python3 >/dev/null 2>&1; then
    echo "=== bench gate skipped (no python3) ==="
    return 0
  fi
  echo "=== bench regression gate ==="
  local runs=()
  local attempt
  for attempt in 1 2 3; do
    local out="$repo_root/build-release/BENCH_gate_run$attempt.json"
    "$repo_root/build-release/bench_micro" \
      --benchmark_min_time=0.05 --benchmark_repetitions=3 \
      --benchmark_out="$out" --benchmark_out_format=json >/dev/null
    runs+=("$out")
    if python3 "$repo_root/bench/check_regression.py" "${runs[@]}" \
        --baseline "$repo_root/bench/BENCH_micro.baseline.json" \
        --tolerance "${XS_BENCH_TOLERANCE:-15}"; then
      return 0
    fi
    echo "--- gate attempt $attempt failed; retrying with a fresh run ---"
  done
  echo "bench regression gate failed after 3 attempts" >&2
  return 1
}

run_sanitize() {
  echo "=== Debug + ASan/UBSan build + ctest (unit label) ==="
  cmake -B "$repo_root/build-asan" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Debug -DXS_SANITIZE=ON \
    -DXS_BUILD_BENCH=OFF -DXS_BUILD_EXAMPLES=OFF "${cmake_common[@]}"
  cmake --build "$repo_root/build-asan" -j"$jobs"
  # Integration-labeled tests are minutes-long under sanitizers; they are
  # fully covered by the Release job.
  ctest --test-dir "$repo_root/build-asan" --output-on-failure -j"$jobs" \
    -L unit
}

case "$mode" in
  release) run_release ;;
  sanitize) run_sanitize ;;
  all) run_release; run_sanitize ;;
  *) echo "usage: $0 [release|sanitize|all]" >&2; exit 2 ;;
esac
echo "CI OK"
